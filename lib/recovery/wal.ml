(** Per-replica write-ahead log of delivered broadcast entries, durable
    on a simulated block device (see the interface). *)

open Mmc_sim

type 'p entry = { pos : int; origin : int; payload : 'p option }

(* In-memory index entry: where a record's frame lives on the device.
   [lsilent] marks a damaged record admitted as a hole under
   [crc = false], so the silent-loss counter counts it once. *)
type loc = {
  lpos : int;
  lorigin : int;
  mutable lsector : int;
  mutable lspan : int;
  mutable lsilent : bool;
}

(* Physical segment extent, for checkpoint-horizon retirement. *)
type seg = {
  sseq : int;
  first_sector : int;
  mutable last_sector : int;
  mutable hi_pos : int;  (** highest record position stored inside *)
}

type 'p t = {
  dev : Blockdev.t;
  crc : bool;
  seg_records : int;
  index : loc Deque.t;  (** retained records, strictly increasing pos *)
  mutable segs : seg list;  (** newest first *)
  mutable seg_fill : int;  (** records in the newest segment *)
  mutable next_seg : int;
  mutable generation : int;  (** bumped by every {!reload} *)
  mutable low : int;
  mutable high : int;
  mutable appended : int;
  mutable truncated : int;
  mutable quarantine : (int * int) list;
      (** sorted position ranges [[lo,hi)] detected lost mid-log *)
  mutable repairq : int list;  (** corrupt-in-place positions *)
  mutable torn : int;  (** tail sectors lost to torn writes *)
  mutable corrupt : int;  (** damaged records detected (crc on) *)
  mutable silent : int;  (** damaged records admitted as holes (crc off) *)
  mutable repaired : int;
  mutable scrubbed : int;  (** record verifications done by scrubs *)
  mutable reloads : int;
}

let write_super t =
  ignore
    (Frame.write_at t.dev ~sector:0
       { Frame.kind = Frame.Super; a = t.low; b = t.generation;
         payload = Bytes.empty })

let create ?dev ?(crc = true) ?(seg_records = 8) () =
  if seg_records < 1 then invalid_arg "Wal.create: seg_records must be >= 1";
  let dev = match dev with Some d -> d | None -> Blockdev.create () in
  let t =
    {
      dev;
      crc;
      seg_records;
      index = Deque.create ();
      segs = [];
      seg_fill = 0;
      next_seg = 0;
      generation = 0;
      low = 0;
      high = 0;
      appended = 0;
      truncated = 0;
      quarantine = [];
      repairq = [];
      torn = 0;
      corrupt = 0;
      silent = 0;
      repaired = 0;
      scrubbed = 0;
      reloads = 0;
    }
  in
  write_super t;
  Blockdev.sync dev;
  t

let dev t = t.dev
let crc_enabled t = t.crc
let high t = t.high
let low t = t.low
let length t = Deque.length t.index
let appended t = t.appended
let truncated t = t.truncated
let quarantine t = t.quarantine
let quarantined t = t.quarantine <> [] || t.repairq <> []

(* Index position of [pos], by binary search. *)
let find_idx t pos =
  let i = Deque.lower_bound t.index ~cmp:(fun l -> compare l.lpos pos) in
  if i < Deque.length t.index && (Deque.get t.index i).lpos = pos then Some i
  else None

let mem t pos = find_idx t pos <> None

let encode_entry e =
  {
    Frame.kind = Frame.Record;
    a = e.pos;
    b = e.origin;
    (* [Closures]: simulated payloads may carry program closures; the
       bytes never leave the process. *)
    payload = Marshal.to_bytes e.payload [ Marshal.Closures ];
  }

let roll_segment t ~first_pos =
  let sector, span =
    Frame.append t.dev
      { Frame.kind = Frame.Header; a = t.next_seg; b = first_pos;
        payload = Marshal.to_bytes t.generation [] }
  in
  t.segs <-
    { sseq = t.next_seg; first_sector = sector;
      last_sector = sector + span - 1; hi_pos = -1 }
    :: t.segs;
  t.next_seg <- t.next_seg + 1;
  t.seg_fill <- 0

let push_frame t e =
  if t.segs = [] || t.seg_fill >= t.seg_records then
    roll_segment t ~first_pos:e.pos;
  let sector, span = Frame.append t.dev (encode_entry e) in
  (match t.segs with
  | s :: _ ->
    s.last_sector <- max s.last_sector (sector + span - 1);
    s.hi_pos <- max s.hi_pos e.pos
  | [] -> ());
  t.seg_fill <- t.seg_fill + 1;
  t.appended <- t.appended + 1;
  { lpos = e.pos; lorigin = e.origin; lsector = sector; lspan = span;
    lsilent = false }

let unquarantine t pos =
  t.quarantine <-
    List.concat_map
      (fun (lo, hi) ->
        if pos < lo || pos >= hi then [ (lo, hi) ]
        else List.filter (fun (a, b) -> a < b) [ (lo, pos); (pos + 1, hi) ])
      t.quarantine

let quarantine_add t lo hi =
  if hi > lo then
    t.quarantine <- List.sort compare ((lo, hi) :: t.quarantine)

let append t e =
  if e.pos < t.high then begin
    if mem t e.pos then
      invalid_arg
        (Fmt.str "Wal.append: position %d not above the log head %d" e.pos
           (t.high - 1));
    (* Backfill: the position sits in a gap the recovery scan left
       behind (quarantined segment, torn tail refetched via catch-up).
       The frame goes to the device tail; the index splices it back in
       position order. *)
    let loc = push_frame t e in
    let i = Deque.lower_bound t.index ~cmp:(fun l -> compare l.lpos e.pos) in
    Deque.insert t.index i loc;
    unquarantine t e.pos;
    t.repairq <- List.filter (fun p -> p <> e.pos) t.repairq;
    t.repaired <- t.repaired + 1
  end
  else begin
    let loc = push_frame t e in
    Deque.push_back t.index loc;
    t.high <- e.pos + 1
  end

let truncate_below t ~pos =
  if pos > t.low then begin
    let dropped = ref 0 in
    while
      (not (Deque.is_empty t.index)) && (Deque.front t.index).lpos < pos
    do
      ignore (Deque.pop_front t.index);
      incr dropped
    done;
    t.low <- pos;
    t.high <- max t.high pos;
    t.truncated <- t.truncated + !dropped;
    t.quarantine <-
      List.filter_map
        (fun (lo, hi) ->
          let lo = max lo pos in
          if lo < hi then Some (lo, hi) else None)
        t.quarantine;
    t.repairq <- List.filter (fun p -> p >= pos) t.repairq;
    (* Retire segments wholly below the new low watermark (never the
       newest — it still takes appends); their sectors are reclaimed. *)
    (match t.segs with
    | head :: rest ->
      let live, dead = List.partition (fun s -> s.hi_pos >= pos) rest in
      t.segs <- head :: live;
      List.iter
        (fun s ->
          Blockdev.discard t.dev ~sector:s.first_sector
            ~sectors:(s.last_sector - s.first_sector + 1))
        dead
    | [] -> ());
    write_super t
  end

(* Decode the record frame behind an index entry, CRC-verified; [None]
   on any mismatch (damaged frame, foreign frame, undecodable
   payload). *)
let decode_record t (loc : loc) : 'p entry option =
  match Frame.read t.dev ~sector:loc.lsector with
  | Frame.Ok (f, _) when f.kind = Frame.Record && f.a = loc.lpos -> (
    try
      Some { pos = f.a; origin = f.b; payload = Marshal.from_bytes f.payload 0 }
    with _ -> None)
  | _ -> None

let entry_at t ~pos =
  match find_idx t pos with
  | None -> None
  | Some i -> decode_record t (Deque.get t.index i)

let suffix t ~from =
  let start = Deque.lower_bound t.index ~cmp:(fun l -> compare l.lpos from) in
  let out = ref [] and bad = ref [] in
  for i = start to Deque.length t.index - 1 do
    let loc = Deque.get t.index i in
    match decode_record t loc with
    | Some e -> out := e :: !out
    | None ->
      if t.crc then bad := loc.lpos :: !bad
      else begin
        (* No integrity checking: the damaged record silently becomes a
           hole — the data is lost and nothing flags it.  The chaos
           convergence oracle is what catches the fallout. *)
        if not loc.lsilent then begin
          loc.lsilent <- true;
          t.silent <- t.silent + 1
        end;
        out := { pos = loc.lpos; origin = loc.lorigin; payload = None } :: !out
      end
  done;
  (* Detected corruption: quarantine the positions (dropping them from
     the index) so catch-up or scrub repair can refill them; this
     suffix simply omits them. *)
  List.iter
    (fun p ->
      (match find_idx t p with
      | Some i -> Deque.remove t.index i
      | None -> ());
      t.corrupt <- t.corrupt + 1;
      quarantine_add t p (p + 1))
    !bad;
  List.rev !out

let scrub t =
  if not t.crc then []
  else begin
    let bad = ref [] in
    Deque.iter
      (fun loc ->
        t.scrubbed <- t.scrubbed + 1;
        match Frame.read t.dev ~sector:loc.lsector with
        | Frame.Ok (f, _) when f.kind = Frame.Record && f.a = loc.lpos -> ()
        | _ -> bad := loc.lpos :: !bad)
      t.index;
    let bad = List.rev !bad in
    List.iter
      (fun p ->
        if not (List.mem p t.repairq) then begin
          t.repairq <- p :: t.repairq;
          t.corrupt <- t.corrupt + 1
        end)
      bad;
    bad
  end

let patch t e =
  let in_repairq = List.mem e.pos t.repairq in
  let in_quar =
    List.exists (fun (lo, hi) -> e.pos >= lo && e.pos < hi) t.quarantine
  in
  if not (in_repairq || in_quar) then false
  else begin
    t.repairq <- List.filter (fun p -> p <> e.pos) t.repairq;
    (match find_idx t e.pos with
    | Some i ->
      (* Corrupt in place: rewrite over the old frame when the fresh
         encoding fits its sector span, else relocate to the tail. *)
      let loc = Deque.get t.index i in
      let f = encode_entry e in
      let bytes = Frame.encode f in
      let ss = Blockdev.sector_size t.dev in
      let span = (Bytes.length bytes + ss - 1) / ss in
      if span <= loc.lspan then
        ignore (Frame.write_at t.dev ~sector:loc.lsector f)
      else begin
        let sector, sp = Frame.append t.dev f in
        loc.lsector <- sector;
        loc.lspan <- sp
      end;
      loc.lsilent <- false;
      t.repaired <- t.repaired + 1
    | None ->
      (* Quarantined (dropped from the index): splice a fresh frame. *)
      let loc = push_frame t e in
      let i =
        Deque.lower_bound t.index ~cmp:(fun l -> compare l.lpos e.pos)
      in
      Deque.insert t.index i loc;
      t.repaired <- t.repaired + 1);
    unquarantine t e.pos;
    true
  end

(* Bias bit-rot towards record payloads that still matter: a frame at
   or above [above] (the checkpoint horizon) whose loss recovery must
   then detect and repair.  Falls back to any retained record. *)
let rot_record t ~rng ~above =
  let n = Deque.length t.index in
  if n = 0 then None
  else begin
    let start = Deque.lower_bound t.index ~cmp:(fun l -> compare l.lpos above) in
    let start = if start >= n then 0 else start in
    let i = start + Rng.int rng ~bound:(n - start) in
    let loc = Deque.get t.index i in
    match Frame.read t.dev ~sector:loc.lsector with
    | Frame.Ok (f, _) ->
      let len = Bytes.length f.Frame.payload in
      let off =
        if len > 0 then Frame.header_bytes + Rng.int rng ~bound:len else 5
      in
      Blockdev.rot_at t.dev ~sector:loc.lsector ~off;
      Some loc.lpos
    | _ -> Some loc.lpos (* already damaged; nothing further to flip *)
  end

let crash t =
  Deque.clear t.index;
  t.segs <- [];
  t.seg_fill <- 0;
  t.quarantine <- [];
  t.repairq <- []

type report = {
  r_torn_sectors : int;  (** junk sectors past the last good frame *)
  r_lost : int;  (** records dropped by the scan (detected corruption) *)
  r_silent : int;  (** damaged records admitted as holes (crc off) *)
  r_quarantine : (int * int) list;
}

(* Rebuild the volatile index from the device: superblock, then a
   sector scan that resyncs on frame magic after any damage.  Records
   in a segment whose header frame is damaged are quarantined with it
   (their metadata is unverifiable).  Classification is by position:
   gaps in the retained range are quarantined for repair; junk past
   the last good frame is the torn tail, refetched via catch-up. *)
let reload t =
  crash t;
  t.generation <- t.generation + 1;
  t.reloads <- t.reloads + 1;
  t.low <-
    (match Frame.read t.dev ~sector:0 with
    | Frame.Ok (f, _) when f.Frame.kind = Frame.Super -> f.Frame.a
    | _ -> 0 (* torn or rotted superblock: genesis low *));
  let hi = Blockdev.high t.dev in
  let sane_span span s = span > 0 && s + span <= hi in
  let recs = ref [] in
  let nrec = ref 0 in
  let seg_ok = ref false in
  let lost = ref 0 and silent = ref 0 in
  let last_good = ref 1 in
  let s = ref 1 in
  while !s < hi do
    (match Frame.read t.dev ~sector:!s with
    | Frame.Ok (f, span) ->
      (match f.Frame.kind with
      | Frame.Header ->
        seg_ok := true;
        t.segs <-
          { sseq = f.Frame.a; first_sector = !s; last_sector = !s + span - 1;
            hi_pos = -1 }
          :: t.segs
      | Frame.Record ->
        if !seg_ok && f.Frame.a >= 0 then begin
          incr nrec;
          recs :=
            ( f.Frame.a,
              (!nrec,
               { lpos = f.Frame.a; lorigin = f.Frame.b; lsector = !s;
                 lspan = span; lsilent = false }) )
            :: !recs;
          match t.segs with
          | seg :: _ ->
            seg.last_sector <- max seg.last_sector (!s + span - 1);
            seg.hi_pos <- max seg.hi_pos f.Frame.a
          | [] -> ()
        end
        else incr lost
      | Frame.Super | Frame.Ckpt -> ());
      last_good := !s + span;
      s := !s + span
    | Frame.Damaged (f, span) ->
      (match f.Frame.kind with
      | Frame.Record
        when (not t.crc) && !seg_ok && f.Frame.a >= 0
             && f.Frame.a < 1 lsl 40 ->
        (* crc off: admit the damaged record — it will surface as a
           silent hole.  The position field itself is unverified, so
           sanity-cap it. *)
        incr nrec;
        incr silent;
        recs :=
          ( f.Frame.a,
            (!nrec,
             { lpos = f.Frame.a; lorigin = f.Frame.b; lsector = !s;
               lspan = span; lsilent = true }) )
          :: !recs;
        (match t.segs with
        | seg :: _ when sane_span span !s ->
          seg.last_sector <- max seg.last_sector (!s + span - 1);
          seg.hi_pos <- max seg.hi_pos f.Frame.a
        | _ -> ())
      | Frame.Header -> seg_ok := false; incr lost
      | _ -> incr lost);
      s := (if sane_span span !s then !s + span else !s + 1)
    | Frame.Broken ->
      (* Unframeable sector: retired (discarded) space, a torn-away
         suffix, or garbage; resync at the next sector. *)
      incr s)
  done;
  (* Dedup by position keeping the latest-written frame (repairs and
     backfills append newer copies of old positions). *)
  let by_pos =
    List.sort
      (fun (p1, (o1, _)) (p2, (o2, _)) -> compare (p1, o1) (p2, o2))
      !recs
  in
  let rec dedup = function
    | (p1, _) :: ((p2, _) :: _ as rest) when p1 = p2 -> dedup rest
    | x :: rest -> x :: dedup rest
    | [] -> []
  in
  let kept =
    List.filter_map
      (fun (p, (_, loc)) -> if p >= t.low then Some loc else None)
      (dedup by_pos)
  in
  List.iter (fun loc -> Deque.push_back t.index loc) kept;
  t.high <-
    (match kept with
    | [] -> t.low
    | _ -> (List.fold_left (fun acc l -> max acc l.lpos) 0 kept) + 1);
  (* Quarantine the position gaps in the retained range — only under
     CRC, mirroring detection: without it the gaps go unnoticed. *)
  if t.crc then begin
    let expected = ref t.low in
    List.iter
      (fun loc ->
        if loc.lpos > !expected then quarantine_add t !expected loc.lpos;
        expected := loc.lpos + 1)
      kept
  end;
  t.seg_fill <- t.seg_records (* force a fresh segment header *);
  let torn = if hi > !last_good then hi - !last_good else 0 in
  t.torn <- t.torn + torn;
  t.corrupt <- t.corrupt + !lost;
  t.silent <- t.silent + !silent;
  {
    r_torn_sectors = torn;
    r_lost = !lost;
    r_silent = !silent;
    r_quarantine = t.quarantine;
  }

type counters = {
  torn : int;
  corrupt : int;
  silent : int;
  repaired : int;
  scrubbed : int;
  reloads : int;
}

let counters (t : 'p t) =
  {
    torn = t.torn;
    corrupt = t.corrupt;
    silent = t.silent;
    repaired = t.repaired;
    scrubbed = t.scrubbed;
    reloads = t.reloads;
  }

let pp ppf t =
  Fmt.pf ppf "wal[%d,%d) %d entries (%d appended, %d truncated)" t.low t.high
    (length t) t.appended t.truncated
