(** Per-replica write-ahead log of delivered broadcast entries (see the
    interface). *)

type 'p entry = { pos : int; origin : int; payload : 'p option }

type 'p t = {
  mutable entries : 'p entry list;  (** newest first, strictly decreasing pos *)
  mutable low : int;  (** smallest retained position (older truncated) *)
  mutable high : int;  (** 1 + highest appended position; 0 when empty *)
  mutable appended : int;
  mutable truncated : int;
}

let create () = { entries = []; low = 0; high = 0; appended = 0; truncated = 0 }

let append t e =
  if e.pos < t.high then
    invalid_arg
      (Fmt.str "Wal.append: position %d not above the log head %d" e.pos
         (t.high - 1));
  t.entries <- e :: t.entries;
  t.high <- e.pos + 1;
  t.appended <- t.appended + 1

let high t = t.high
let low t = t.low
let length t = List.length t.entries
let appended t = t.appended
let truncated t = t.truncated

let truncate_below t ~pos =
  if pos > t.low then begin
    let keep, drop = List.partition (fun e -> e.pos >= pos) t.entries in
    t.entries <- keep;
    t.low <- pos;
    t.truncated <- t.truncated + List.length drop
  end

let suffix t ~from =
  List.filter (fun e -> e.pos >= from) t.entries |> List.rev

let pp ppf t =
  Fmt.pf ppf "wal[%d,%d) %d entries (%d appended, %d truncated)" t.low t.high
    (length t) t.appended t.truncated
