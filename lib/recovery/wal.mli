(** Per-replica write-ahead log of delivered broadcast entries.

    The recoverable store appends every totally-ordered entry {e
    before} applying it to the volatile object state, so the applied
    prefix is always reconstructible: a crash loses the in-memory
    copy, never the log.  Entries are keyed by their global
    total-order position; [payload = None] records a {e hole} — a
    position fenced off during a sequencer epoch change that every
    replica skips uniformly (the log keeps the slot so replay and
    catch-up stay position-aligned).

    The log is append-only and strictly position-increasing.
    {!truncate_below} drops a prefix once a checkpoint covers it
    (keeping the suffix available to serve anti-entropy catch-up
    requests from rejoining peers). *)

type 'p entry = {
  pos : int;  (** global total-order position *)
  origin : int;  (** issuing replica *)
  payload : 'p option;  (** [None] = hole (epoch-fence no-op) *)
}

type 'p t

val create : unit -> 'p t

(** Append at a position strictly above the current head; raises
    [Invalid_argument] otherwise (the caller logs in apply order). *)
val append : 'p t -> 'p entry -> unit

(** 1 + highest appended position; 0 for an empty log. *)
val high : 'p t -> int

(** Smallest retained position (everything below was truncated). *)
val low : 'p t -> int

val length : 'p t -> int
val appended : 'p t -> int
val truncated : 'p t -> int

(** Drop entries below [pos] (a checkpoint at [pos] covers them). *)
val truncate_below : 'p t -> pos:int -> unit

(** Retained entries with position [>= from], in position order —
    the replay suffix after loading a checkpoint, and the payload of
    anti-entropy [Push] responses. *)
val suffix : 'p t -> from:int -> 'p entry list

val pp : Format.formatter -> 'p t -> unit
