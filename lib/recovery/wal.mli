(** Per-replica write-ahead log of delivered broadcast entries.

    The recoverable store appends every totally-ordered entry {e
    before} applying it to the volatile object state, so the applied
    prefix is always reconstructible: a crash loses the in-memory
    copy, never the log.  Entries are keyed by their global
    total-order position; [payload = None] records a {e hole} — a
    position fenced off during a sequencer epoch change that every
    replica skips uniformly (the log keeps the slot so replay and
    catch-up stay position-aligned).

    Since the storage-fault work the log is {e durable on a simulated
    block device} ({!Mmc_sim.Blockdev}): records are appended as
    CRC32-framed frames ({!Frame}) grouped into segments whose header
    frames carry a sequence number, the first position and the reload
    generation; a superblock at sector 0 holds the durable truncation
    low watermark.  The in-memory side is only an index (an
    array-backed {!Deque} of frame locations) — {!crash} drops it and
    {!reload} rebuilds it by scanning the device, truncating a torn
    tail, quarantining mid-log corruption and falling back to genesis
    on a damaged superblock.  {!scrub} re-verifies retained frames so
    rot is found (and {!patch}ed from peers) before the data is
    needed.  With [crc = false] the same damage is {e not} detected:
    damaged records pass through as silent holes — the mode the chaos
    oracle is pinned to catch.

    The log is append-only and strictly position-increasing at the
    head; appending {e below} the head is allowed exactly when the
    position is absent (a quarantined gap or torn tail being refilled
    by catch-up) and raises [Invalid_argument] when it is present.
    {!truncate_below} drops a prefix once a checkpoint covers it and
    retires (reclaims) segments wholly below the watermark. *)

open Mmc_sim

type 'p entry = {
  pos : int;  (** global total-order position *)
  origin : int;  (** issuing replica *)
  payload : 'p option;  (** [None] = hole (epoch-fence no-op) *)
}

type 'p t

(** [create ?dev ?crc ?seg_records ()] — fresh log on [dev] (a private
    device by default).  [crc] (default [true]) enables integrity
    checking: corruption detection, quarantine and repair.
    [seg_records] (default 8) caps records per segment. *)
val create : ?dev:Blockdev.t -> ?crc:bool -> ?seg_records:int -> unit -> 'p t

val dev : 'p t -> Blockdev.t
val crc_enabled : 'p t -> bool

(** Append at a position strictly above the current head, or refill an
    absent position below it (gap repair); raises [Invalid_argument]
    when the position is already present. *)
val append : 'p t -> 'p entry -> unit

(** 1 + highest appended position; 0 for an empty log. *)
val high : 'p t -> int

(** Smallest retained position (everything below was truncated). *)
val low : 'p t -> int

val length : 'p t -> int
val appended : 'p t -> int
val truncated : 'p t -> int

(** Is [pos] present in the index? *)
val mem : 'p t -> int -> bool

(** Drop entries below [pos] (a checkpoint at [pos] covers them),
    persist the new watermark in the superblock and reclaim segments
    wholly below it. *)
val truncate_below : 'p t -> pos:int -> unit

(** Retained entries with position [>= from], in position order,
    decoded and CRC-verified from the device — the replay suffix after
    loading a checkpoint, and the payload of anti-entropy [Push]
    responses.  Records that fail verification are omitted and
    quarantined (crc on) or admitted as holes (crc off). *)
val suffix : 'p t -> from:int -> 'p entry list

(** Decode one retained record, CRC-verified; [None] when absent or
    damaged. *)
val entry_at : 'p t -> pos:int -> 'p entry option

(** Re-verify every retained frame; returns the positions found
    damaged (queued for {!patch}).  No-op with [crc = false]. *)
val scrub : 'p t -> int list

(** Repair a damaged or quarantined position with a known-good entry
    from a peer: rewrite in place when the fresh frame fits the old
    sector span, else append and re-point the index.  Returns [false]
    when the position needs no repair. *)
val patch : 'p t -> 'p entry -> bool

(** Are any positions quarantined or awaiting repair? *)
val quarantined : 'p t -> bool

(** Quarantined position ranges [[lo,hi)]. *)
val quarantine : 'p t -> (int * int) list

(** Flip a payload byte of a retained record at position [>= above]
    when possible (else any); returns the chosen position.  The
    bit-rot injection point of the fault plan. *)
val rot_record : 'p t -> rng:Rng.t -> above:int -> int option

(** Drop the volatile index (wipe-crash). *)
val crash : 'p t -> unit

type report = {
  r_torn_sectors : int;  (** junk sectors past the last good frame *)
  r_lost : int;  (** records dropped by the scan (detected corruption) *)
  r_silent : int;  (** damaged records admitted as holes (crc off) *)
  r_quarantine : (int * int) list;
}

(** Rebuild the index from the device after a crash: scan sector by
    sector resyncing on frame magic, truncate the torn tail,
    quarantine gaps (crc on), fall back to genesis on a damaged
    superblock. *)
val reload : 'p t -> report

type counters = {
  torn : int;
  corrupt : int;
  silent : int;
  repaired : int;
  scrubbed : int;
  reloads : int;
}

val counters : 'p t -> counters
val pp : Format.formatter -> 'p t -> unit
