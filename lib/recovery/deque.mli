(** Array-backed double-ended queue.

    The WAL's in-memory record index: records enter at the back in
    position order, checkpoint truncation retires them from the front,
    and catch-up lookups binary-search the sorted middle — so
    append/truncate are amortized O(1) and a suffix costs O(log n + k)
    instead of the O(n) [List.partition]/[List.filter] walks of the
    list-based log. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val push_back : 'a t -> 'a -> unit

(** Random access by index from the front; raises [Invalid_argument]
    out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val front : 'a t -> 'a
val back : 'a t -> 'a
val pop_front : 'a t -> 'a

(** [insert t i x] places [x] at index [i], shifting the shorter side;
    O(min(i, n-i)). *)
val insert : 'a t -> int -> 'a -> unit

val remove : 'a t -> int -> unit
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list

(** [lower_bound t ~cmp] — smallest index [i] with [cmp (get t i) >= 0]
    in a deque sorted w.r.t. [cmp]; [length t] when none qualifies. *)
val lower_bound : 'a t -> cmp:('a -> int) -> int
