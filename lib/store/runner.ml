(** Closed-loop workload runner.

    Drives [n_procs] sequential clients against a store inside the
    simulator: each client issues its next m-operation a think time
    after the previous response (processes are sequential, so histories
    are well-formed).  Runs to quiescence and returns the recorded
    history, the timestamp table for the P 5.x validators, and
    performance measurements. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast

type config = {
  n_procs : int;
  n_objects : int;
  ops_per_proc : int;
  think_lo : int;  (** >= 1 keeps process subhistories sequential *)
  think_hi : int;
  latency : Latency.t;
  abcast_impl : Abcast.impl;
  kind : Store.kind;
  aw_delta : int;  (** delay bound assumed by the Aw store *)
  fault : Fault.plan;
      (** faults injected below the store's transport; {!Fault.none}
          (the default) leaves the channels reliable *)
  reliable : Reliable.config option;
      (** retry budget of the ack/retransmit layer under faults
          ([None] = {!Reliable.default}); threaded to the broadcast
          and catch-up transports of the msc/mlin/rmsc stores *)
  recovery : Mmc_recovery.Rlog.policy;
      (** WAL checkpoint/gap-poll policy of the [Rmsc] store *)
  delivery : Rstore.mode;
      (** the [Rmsc] store's delivery rule: quorum-stable (default)
          or optimistic (the pre-stability behaviour, kept for
          comparison) *)
  detector : Detector.config option;
      (** failure-detector tuning for the [Rmsc] broadcast ([None] =
          {!Mmc_sim.Detector.default_config}) *)
  batch : Batch.t;
      (** broadcast batching / tree-dissemination knobs
          ({!Mmc_broadcast.Batch.unbatched} by default); changes only
          the wire framing, never the delivered order *)
  fastpath : Mmc_fastpath.Classify.mode;
      (** the [Seg] store's classifier: [Sound] (default), [Off]
          (everything sequenced — the A/B baseline), or the
          deliberately-wrong [Trust_labels] used by the oracle test *)
}

let default_config =
  {
    n_procs = 4;
    n_objects = 8;
    ops_per_proc = 20;
    think_lo = 1;
    think_hi = 10;
    latency = Latency.default;
    abcast_impl = Abcast.Sequencer_impl;
    kind = Store.Msc;
    aw_delta = 15;
    fault = Fault.none;
    reliable = None;
    recovery = Mmc_recovery.Rlog.default_policy;
    delivery = Rstore.Stable;
    detector = None;
    batch = Batch.unbatched;
    fastpath = Mmc_fastpath.Classify.Sound;
  }

type result = {
  history : History.t;
  stamps : (Types.mop_id, Version_vector.stamped) Hashtbl.t;
  sync_order : Types.mop_id list;
      (** synchronized updates in atomic-broadcast order (empty for
          stores without a global update order) *)
  duration : Types.time;  (** virtual time at quiescence *)
  messages : int;
  events : int;
  completed : int;
  query_latency : Stats.summary;
  update_latency : Stats.summary;
  fault : Fault.t option;
      (** the run's fault injector — drop/retransmission/recovery
          counters — when a fault plan was configured *)
  recovery : Rstore.handle option;
      (** the [Rmsc] store's recovery introspection (cursors,
          convergence, WAL/catch-up counters) *)
  fastpath : Seg_store.handle option;
      (** the [Seg] store's fast-path introspection (local/escalated/
          flush counters; finalize already called by {!run}) *)
}

let make_store ?fault ?sink ?tail ?ownership ?fsink cfg engine ~rng ~recorder =
  match cfg.kind with
  | Store.Msc ->
    Msc_store.create ?fault ?reliable:cfg.reliable ~batch:cfg.batch engine
      ~n:cfg.n_procs ~n_objects:cfg.n_objects ~latency:cfg.latency ~rng
      ~abcast_impl:cfg.abcast_impl ~recorder
  | Store.Mlin ->
    Mlin_store.create ?fault ?reliable:cfg.reliable ~batch:cfg.batch engine
      ~n:cfg.n_procs ~n_objects:cfg.n_objects ~latency:cfg.latency ~rng
      ~abcast_impl:cfg.abcast_impl ~recorder
  | Store.Rmsc ->
    Rstore.create ?fault ?reliable:cfg.reliable ~batch:cfg.batch
      ?detector:cfg.detector ~mode:cfg.delivery ~policy:cfg.recovery ?sink
      engine ~n:cfg.n_procs ~n_objects:cfg.n_objects ~latency:cfg.latency ~rng
      ~abcast_impl:cfg.abcast_impl ~recorder
  | Store.Central ->
    Central_store.create ?fault engine ~n:cfg.n_procs ~n_objects:cfg.n_objects
      ~latency:cfg.latency ~rng ~recorder
  | Store.Local ->
    Local_store.create engine ~n:cfg.n_procs ~n_objects:cfg.n_objects ~recorder
  | Store.Causal ->
    Causal_store.create ?fault engine ~n:cfg.n_procs ~n_objects:cfg.n_objects
      ~latency:cfg.latency ~rng ~recorder
  | Store.Lock ->
    Lock_store.create ?fault engine ~n:cfg.n_procs ~n_objects:cfg.n_objects
      ~latency:cfg.latency ~rng ~recorder
  | Store.Aw ->
    Aw_store.create ?fault engine ~n:cfg.n_procs ~n_objects:cfg.n_objects
      ~latency:cfg.latency ~rng ~delta:cfg.aw_delta ~recorder
  | Store.Seg ->
    Seg_store.create ?fault ?reliable:cfg.reliable ~batch:cfg.batch
      ~mode:cfg.fastpath ?tail ?ownership ?fsink engine ~n:cfg.n_procs
      ~n_objects:cfg.n_objects ~latency:cfg.latency ~rng
      ~abcast_impl:cfg.abcast_impl ~recorder

(** [check_trace result ~flavour] — Theorem-7 admissibility of the
    recorded trace: the flavour's base relation plus the recorded
    atomic-broadcast order as extra edges, checked under [kind]
    (default WW — the broadcast totally orders updates).

    The transitive closure is maintained incrementally as the trace's
    edges stream in ({!Mmc_core.Check_constrained.Incremental}), the
    way a live verifier would follow a growing trace: edges already
    implied by the closure cost O(1), and the final check runs on the
    maintained closure without ever re-closing from scratch. *)
let check_history ?pool ?arena ?(kind = Constraints.WW) h ~sync_order ~flavour
    =
  match pool with
  | Some _ ->
    (* With a pool the payoff is in the one-shot Warshall closure, so
       take the batch route over the same edges: build the relation in
       one go and let {!Mmc_core.Relation.transitive_closure} block
       its rows over the pool's domains.  [test_incremental] pins this
       path to the incremental one verdict-for-verdict. *)
    let rel = Relation.create (History.n_mops h) in
    Relation.add_edges rel (History.base_edges h flavour);
    let rec link = function
      | a :: (b :: _ as rest) ->
        Relation.add rel a b;
        link rest
      | [ _ ] | [] -> ()
    in
    link sync_order;
    Check_constrained.check_relation ?pool ?arena h rel kind
  | None ->
    let inc = Check_constrained.Incremental.create (History.n_mops h) in
    Check_constrained.Incremental.add_edges inc (History.base_edges h flavour);
    let rec link = function
      | a :: (b :: _ as rest) ->
        Check_constrained.Incremental.add_edge inc a b;
        link rest
      | [ _ ] | [] -> ()
    in
    link sync_order;
    Check_constrained.Incremental.check ?arena inc h kind

let check_trace ?pool ?arena ?kind (res : result) ~flavour =
  check_history ?pool ?arena ?kind res.history ~sync_order:res.sync_order
    ~flavour

(** [run ~seed cfg ~workload] — [workload rng ~proc ~step] produces the
    [step]-th m-operation of client [proc]. *)
let run ~seed cfg ~workload =
  if cfg.think_lo < 1 then invalid_arg "Runner.run: think_lo must be >= 1";
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let recorder = Recorder.create ~n_objects:cfg.n_objects in
  let store_rng = Rng.split rng in
  let query_stats = Stats.create () in
  let update_stats = Stats.create () in
  let completed = ref 0 in
  let client_rngs = Array.init cfg.n_procs (fun _ -> Rng.split rng) in
  (* The injector's stream is split only when a plan is present, after
     the streams above: fault-free runs draw identically to a build
     without fault injection — seeds keep meaning the same runs. *)
  Fault.validate ~n:cfg.n_procs cfg.fault;
  let fault =
    if Fault.is_none cfg.fault then None
    else Some (Fault.create cfg.fault ~rng:(Rng.split rng))
  in
  let handle = ref None in
  let fhandle = ref None in
  let store =
    make_store ?fault
      ~sink:(fun h -> handle := Some h)
      ~fsink:(fun h -> fhandle := Some h)
      cfg engine ~rng:store_rng ~recorder
  in
  let rec step proc i () =
    if i < cfg.ops_per_proc then begin
      let m = workload client_rngs.(proc) ~proc ~step:i in
      let t0 = Engine.now engine in
      let is_query = Prog.is_query m in
      Store.invoke store ~proc m ~k:(fun _result ->
          incr completed;
          let lat = Engine.now engine - t0 in
          Stats.add (if is_query then query_stats else update_stats) lat;
          let think =
            Rng.int_range client_rngs.(proc) ~lo:cfg.think_lo ~hi:cfg.think_hi
          in
          Engine.schedule engine ~delay:think (step proc (i + 1)))
    end
  in
  for proc = 0 to cfg.n_procs - 1 do
    let start = Rng.int_range client_rngs.(proc) ~lo:cfg.think_lo ~hi:cfg.think_hi in
    Engine.schedule engine ~delay:start (step proc 0)
  done;
  Engine.run engine;
  (* The Seg store's tail entries (never flushed by quiescence) join
     the synchronization order before the history is built. *)
  Option.iter (fun (h : Seg_store.handle) -> h.finalize ()) !fhandle;
  let history, stamps, sync_order = Recorder.to_history_full recorder in
  {
    history;
    stamps;
    sync_order;
    duration = Engine.now engine;
    messages = Store.messages_sent store;
    events = Engine.executed engine;
    completed = !completed;
    query_latency = Stats.summarize query_stats;
    update_latency = Stats.summarize update_stats;
    fault;
    recovery = !handle;
    fastpath = !fhandle;
  }
