(** The m-sequential-consistency protocol (paper, Figure 4).

    Every replica keeps a full copy of the shared objects and a version
    vector [ts].  An update m-operation is atomically broadcast (A1)
    and applied by every replica in delivery order (A2); the issuing
    replica generates the response when it applies the operation
    itself.  A query m-operation executes immediately against the local
    copy (A3) — queries are free of communication, the defining
    performance property of this protocol. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast

type payload = {
  origin : int;
  mprog : Prog.mprog;
  inv : Types.time;
  k : Value.t -> unit;
}

let create ?fault ?reliable ?batch engine ~n ~n_objects ~latency ~rng
    ~abcast_impl ~recorder : Store.t =
  let xs = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let tss = Array.init n (fun _ -> Array.make n_objects 0) in
  (* Per-node delivery counters: identical across nodes (total order),
     so the origin's value is the update's global broadcast position. *)
  let delivered = Array.make n 0 in
  let deliver ~node ~origin:_ payload =
    let position = delivered.(node) in
    delivered.(node) <- position + 1;
    let start_ts =
      if node = payload.origin then Some (Array.copy tss.(node)) else None
    in
    let applied = Apply.update xs.(node) tss.(node) ~ns:0 payload.mprog.Prog.prog in
    if node = payload.origin then begin
      let resp = Engine.now engine in
      Recorder.add recorder
        {
          Recorder.proc = payload.origin;
          inv = payload.inv;
          resp;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = applied.Apply.writes;
          start_ts = Option.get start_ts;
          finish_ts = Array.copy tss.(node);
          sync = Some position;
        };
      payload.k applied.Apply.result
    end
  in
  let abcast =
    (Select.factory abcast_impl) ?fault ?reliable ?batch engine ~n ~latency
      ~rng:(Rng.split rng) ~deliver
  in
  let invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if Prog.is_query m then begin
      (* (A3): apply to the local copy, respond immediately. *)
      let ts = tss.(proc) in
      let applied = Apply.query xs.(proc) ts ~ns:0 m.Prog.prog in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = [];
          start_ts = Array.copy ts;
          finish_ts = Array.copy ts;
          sync = None;
        };
      k applied.Apply.result
    end
    else
      (* (A1): atomically broadcast the update. *)
      Abcast.broadcast abcast ~src:proc { origin = proc; mprog = m; inv = now; k }
  in
  {
    Store.name = "msc";
    invoke;
    messages_sent = (fun () -> Abcast.messages_sent abcast);
  }
