(** Centralized baseline: one server executes every m-operation
    serially.  Trivially m-linearizable; every operation pays a round
    trip. *)

val server_node : int

(** [fault] attaches a fault injector: all of the protocol's traffic
    then runs over the reliable ack/retransmit transport and survives
    message loss, partitions and crash/recovery windows. *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  recorder:Recorder.t ->
  Store.t
