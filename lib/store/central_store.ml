(** Centralized baseline: one server executes every m-operation
    serially.

    The classical alternative to the paper's replicated protocols:
    trivially m-linearizable (the server is the sequential witness and
    every execution happens between invocation and response), but every
    operation — query or update — pays a round trip to the server, and
    the server is a throughput bottleneck. *)

open Mmc_core
open Mmc_sim

type msg =
  | Exec of { origin : int; mprog : Prog.mprog; inv : Types.time; reqid : int }
  | Result of {
      reqid : int;
      applied : Apply.applied;
      start_ts : Version_vector.t;
      finish_ts : Version_vector.t;
      inv : Types.time;
      position : int;  (** serial execution position at the server *)
    }

let server_node = 0

let create ?fault engine ~n ~n_objects ~latency ~rng ~recorder : Store.t =
  let x = Array.make n_objects Value.initial in
  let ts = Array.make n_objects 0 in
  let net = Transport.create ?fault engine ~n ~latency ~rng:(Rng.split rng) in
  let conts : (int, Value.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let next_reqid = ref 0 in
  let exec_count = ref 0 in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src msg ->
        match msg with
        | Exec { origin; mprog; inv; reqid } ->
          assert (node = server_node);
          let start_ts = Array.copy ts in
          let position = !exec_count in
          incr exec_count;
          let applied = Apply.update x ts ~ns:0 mprog.Prog.prog in
          Transport.send net ~src:node ~dst:origin
            (Result
               {
                 reqid;
                 applied;
                 start_ts;
                 finish_ts = Array.copy ts;
                 inv;
                 position;
               })
        | Result { reqid; applied; start_ts; finish_ts; inv; position } ->
          let k = Hashtbl.find conts reqid in
          Hashtbl.remove conts reqid;
          Recorder.add recorder
            {
              Recorder.proc = node;
              inv;
              resp = Engine.now engine;
              ops = applied.Apply.ops;
              reads = applied.Apply.reads;
              writes = applied.Apply.writes;
              start_ts;
              finish_ts;
              sync = (if applied.Apply.writes = [] then None else Some position);
            };
          k applied.Apply.result)
  done;
  let invoke ~proc (m : Prog.mprog) ~k =
    let reqid = !next_reqid in
    incr next_reqid;
    Hashtbl.replace conts reqid k;
    Transport.send net ~src:proc ~dst:server_node
      (Exec { origin = proc; mprog = m; inv = Engine.now engine; reqid })
  in
  {
    Store.name = "central";
    invoke;
    messages_sent = (fun () -> Transport.messages_sent net);
  }
