(** Shared program-application logic: execute a program against a
    replica's object copy and version vector, collecting what the
    recorder needs; written objects' versions bump once each after the
    program finishes (action (A2)'s [ts[x]++]). *)

open Mmc_core

type applied = {
  result : Value.t;
  ops : Op.t list;
  reads : (Types.obj_id * int * int) list;
      (** external reads: (object, version read, namespace) *)
  writes : (Types.obj_id * int * int) list;
      (** final writes: (object, new version, namespace) *)
}

(** Apply an update (or any) program, mutating the copy and the
    version vector. *)
val update : Value.t array -> int array -> ns:int -> Prog.t -> applied

(** Namespace-tracking update for stores whose replica state mixes
    version namespaces (the [seg] store): [ns_of.(o)] holds the
    namespace of object [o]'s current version — reads report it,
    writes re-home the object under [writer_ns]. *)
val update_ns :
  Value.t array -> int array -> int array -> writer_ns:int -> Prog.t -> applied

exception Query_wrote of Types.obj_id

(** Apply a query program to a snapshot; raises {!Query_wrote} if it
    writes (the caller declared an empty write set). *)
val query : Value.t array -> int array -> ns:int -> Prog.t -> applied

(** Namespace-tracking query (see {!update_ns}). *)
val query_ns : Value.t array -> int array -> int array -> Prog.t -> applied
