(** Client-facing interface of a replicated multi-object store.

    Processes are sequential: a client must not invoke again before its
    previous continuation fired (histories stay well-formed). *)

open Mmc_core

type t = {
  name : string;
  invoke : proc:int -> Prog.mprog -> k:(Value.t -> unit) -> unit;
  messages_sent : unit -> int;
}

val invoke : t -> proc:int -> Prog.mprog -> k:(Value.t -> unit) -> unit
val messages_sent : t -> int
val name : t -> string

type kind =
  | Msc  (** Figure 4: m-sequential consistency *)
  | Mlin  (** Figure 6: m-linearizability *)
  | Central  (** centralized serial server (baseline) *)
  | Local  (** unsynchronized local copies (inconsistent baseline) *)
  | Causal  (** causal propagation (Raynal et al., weaker baseline) *)
  | Lock  (** distributed strict two-phase locking over sharded owners *)
  | Aw  (** Attiya–Welch clock-based linearizability (needs delay bound) *)
  | Rmsc  (** recoverable msc: WAL + checkpoints + catch-up (Rstore) *)
  | Seg
      (** coordination-avoidance fast path: confluent m-operations
          apply locally, sequenced ones escalate to the broadcast
          behind a flush barrier (Seg_store) *)

val pp_kind : Format.formatter -> kind -> unit
val kind_of_string : string -> kind option
