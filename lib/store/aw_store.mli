(** Attiya–Welch-style clock-based linearizable store: updates apply
    at every replica at [issue time + delta] by the (perfectly
    synchronized) clock, queries read locally.  m-linearizable while
    every message arrives within [delta]; a late message makes the
    receiving replica apply on arrival and diverge — the failure mode
    the paper's Figure 6 protocol eliminates by assuming nothing about
    clocks or delays.

    Same recording limitation as {!Causal_store}: update procedures'
    write sets and values must be data-independent (straight-line blind
    writes). *)

(** [fault] attaches a fault injector: all of the protocol's traffic
    then runs over the reliable ack/retransmit transport and survives
    message loss, partitions and crash/recovery windows. *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  delta:int ->
  recorder:Recorder.t ->
  Store.t
