(** The Attiya–Welch-style clock-based linearizable store — the
    algorithm the paper's protocol improves on (Section 1: their
    "implementation for linearizability assumes that clocks are
    perfectly synchronized and there is an upper bound on the delay of
    the message").

    An update issued at time [t] is sent to every replica and applied
    at time [t + delta + 1] — the first instant strictly after the
    delay bound — by the synchronized clock (the simulator's virtual
    time {e is} a perfectly synchronized clock); the issuer responds
    when it applies.  Queries read the local copy immediately.
    When every message really arrives within [delta], all replicas
    apply every update at the same instant in the same (time, origin,
    sequence) order and executions are m-linearizable.

    When the delay bound is violated — a message arrives after
    [t + delta] — the late replica applies the update on arrival, its
    state diverges, and linearizability (and even m-SC) can break:
    exactly the failure mode the paper's Figure 6 protocol avoids by
    assuming nothing about delays.

    Version accounting mirrors {!Causal_store}: writes are tagged with
    the origin and the origin's update sequence number, which are
    carried in the message and therefore agree at every replica even
    when application orders diverge.  The same limitation applies:
    update procedures' write sets and values must be data-independent
    (straight-line blind writes, e.g. [Mmc_workload.Generator.mixed]). *)

open Mmc_core
open Mmc_sim

type update_msg = {
  origin : int;
  origin_seq : int;  (** per-origin update counter *)
  issued : Types.time;
  mprog : Prog.mprog;
}

type node_state = {
  x : Value.t array;
  tags : (int * int) array;  (** (ns, version) of each object's value *)
}

let create ?fault engine ~n ~n_objects ~latency ~rng ~delta ~recorder : Store.t =
  if delta < 1 then invalid_arg "Aw_store.create: delta must be >= 1";
  let net = Transport.create ?fault engine ~n ~latency ~rng:(Rng.split rng) in
  let states =
    Array.init n (fun _ ->
        { x = Array.make n_objects Value.initial; tags = Array.make n_objects (0, 0) })
  in
  let origin_seqs = Array.make n 0 in
  let zero_ts () = Array.make n_objects 0 in
  (* Apply [u] to [node]'s copy; record only at the origin. *)
  let apply node (u : update_msg) =
    let st = states.(node) in
    let ops = ref [] in
    let written = ref [] in
    let reads = ref [] in
    let rd o =
      let v = st.x.(o) in
      ops := Op.read o v :: !ops;
      if (not (List.mem o !written))
         && not (List.exists (fun (o', _, _) -> o' = o) !reads)
      then begin
        let ns, ver = st.tags.(o) in
        reads := (o, ver, ns) :: !reads
      end;
      v
    in
    let wr o v =
      ops := Op.write o v :: !ops;
      st.x.(o) <- v;
      st.tags.(o) <- (u.origin + 1, u.origin_seq + 1);
      if not (List.mem o !written) then written := o :: !written
    in
    let result = Prog.run u.mprog.Prog.prog ~read:rd ~write:wr in
    if node = u.origin then begin
      let writes =
        List.rev_map (fun o -> (o, u.origin_seq + 1, u.origin + 1)) !written
      in
      Recorder.add recorder
        {
          Recorder.proc = u.origin;
          inv = u.issued;
          resp = Engine.now engine;
          ops = List.rev !ops;
          reads = List.rev !reads;
          writes;
          start_ts = zero_ts ();
          finish_ts = zero_ts ();
          sync = None;
        }
    end;
    result
  in
  (* Per-node pending queue: updates are applied at max(issued + delta,
     arrival), in (due time, origin, origin_seq) order — the
     deterministic tie-break that keeps replicas agreeing when all
     messages are on time.  Late messages apply on arrival, alone:
     that is the divergence. *)
  let pending : update_msg list array = Array.make n [] in
  let conts : (int * int, Value.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  (* Applied at the first instant strictly after the delay bound, so a
     message arriving at exactly [issued + delta] (legal: the bound is
     inclusive) is still in the pending set when the apply fires. *)
  let due u = u.issued + delta + 1 in
  let flush node =
    let now = Engine.now engine in
    let ready, later = List.partition (fun u -> due u <= now) pending.(node) in
    pending.(node) <- later;
    List.stable_sort
      (fun a b -> compare (due a, a.origin, a.origin_seq) (due b, b.origin, b.origin_seq))
      ready
    |> List.iter (fun u ->
           let result = apply node u in
           if node = u.origin then begin
             let key = (u.origin, u.origin_seq) in
             let k = Hashtbl.find conts key in
             Hashtbl.remove conts key;
             k result
           end)
  in
  let enqueue node (u : update_msg) =
    pending.(node) <- u :: pending.(node);
    let now = Engine.now engine in
    if now >= due u then flush node
    else Engine.schedule engine ~delay:(due u - now) (fun () -> flush node)
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src (u : update_msg) -> enqueue node u)
  done;
  let invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if Prog.is_query m then begin
      let st = states.(proc) in
      let ops = ref [] in
      let reads = ref [] in
      let rd o =
        let v = st.x.(o) in
        ops := Op.read o v :: !ops;
        if not (List.exists (fun (o', _, _) -> o' = o) !reads) then begin
          let ns, ver = st.tags.(o) in
          reads := (o, ver, ns) :: !reads
        end;
        v
      in
      let wr o _ = raise (Apply.Query_wrote o) in
      let result = Prog.run m.Prog.prog ~read:rd ~write:wr in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops = List.rev !ops;
          reads = List.rev !reads;
          writes = [];
          start_ts = zero_ts ();
          finish_ts = zero_ts ();
          sync = None;
        };
      k result
    end
    else begin
      let u =
        { origin = proc; origin_seq = origin_seqs.(proc); issued = now; mprog = m }
      in
      origin_seqs.(proc) <- origin_seqs.(proc) + 1;
      Hashtbl.replace conts (proc, u.origin_seq) k;
      (* Remote replicas via the network; the origin enqueues directly —
         its own clock fires exactly at [now + delta]. *)
      for dst = 0 to n - 1 do
        if dst <> proc then Transport.send net ~src:proc ~dst u
      done;
      enqueue proc u
    end
  in
  {
    Store.name = "aw";
    invoke;
    messages_sent = (fun () -> Transport.messages_sent net);
  }
