(** Client-facing interface of a replicated multi-object store.

    [invoke ~proc m ~k] starts m-operation [m] at process [proc]; the
    continuation [k] is called with the result when the response event
    occurs.  Processes are sequential (well-formed histories): a client
    must not invoke again before its previous continuation fired. *)

open Mmc_core

type t = {
  name : string;
  invoke : proc:int -> Prog.mprog -> k:(Value.t -> unit) -> unit;
  messages_sent : unit -> int;
}

let invoke t ~proc m ~k = t.invoke ~proc m ~k

let messages_sent t = t.messages_sent ()

let name t = t.name

(** Store protocol selector. *)
type kind =
  | Msc  (** Figure 4: m-sequential consistency *)
  | Mlin  (** Figure 6: m-linearizability *)
  | Central  (** centralized serial server (baseline) *)
  | Local  (** unsynchronized local copies (inconsistent baseline) *)
  | Causal  (** causal propagation (Raynal et al., weaker baseline) *)
  | Lock  (** distributed strict two-phase locking over sharded owners *)
  | Aw  (** Attiya–Welch clock-based linearizability (needs delay bound) *)
  | Rmsc  (** recoverable msc: WAL + checkpoints + catch-up (Rstore) *)
  | Seg
      (** coordination-avoidance fast path: confluent m-operations
          apply locally, sequenced ones escalate to the broadcast
          behind a flush barrier (Seg_store) *)

let pp_kind ppf = function
  | Msc -> Fmt.string ppf "msc"
  | Mlin -> Fmt.string ppf "mlin"
  | Central -> Fmt.string ppf "central"
  | Local -> Fmt.string ppf "local"
  | Causal -> Fmt.string ppf "causal"
  | Lock -> Fmt.string ppf "lock"
  | Aw -> Fmt.string ppf "aw"
  | Rmsc -> Fmt.string ppf "rmsc"
  | Seg -> Fmt.string ppf "seg"

let kind_of_string = function
  | "msc" -> Some Msc
  | "mlin" -> Some Mlin
  | "central" -> Some Central
  | "local" -> Some Local
  | "causal" -> Some Causal
  | "lock" -> Some Lock
  | "aw" -> Some Aw
  | "rmsc" -> Some Rmsc
  | "seg" -> Some Seg
  | _ -> None
