(** Causally consistent replicated store (Raynal et al.'s weaker
    condition, for comparison with the paper's protocols).

    No atomic broadcast: an update is applied locally at its origin
    immediately and flooded to the other replicas, which delay applying
    it until all causally preceding updates have been applied (vector
    clocks, per-origin FIFO counting).  Queries read the local copy.
    Concurrent updates may be applied in different orders at different
    replicas: executions are causally consistent but in general not
    m-sequentially consistent.

    Version accounting: each write of object [x] by origin [j] gets
    namespace [j + 1] and version = number of [j]'s updates writing [x]
    so far.  Causal delivery is per-origin FIFO, so these counters
    agree at every replica and identify writers globally even though
    replicas disagree on the interleaving. *)

open Mmc_core
open Mmc_sim

type update_msg = {
  origin : int;
  vc : int array;  (** origin's vector clock after the update *)
  mprog : Prog.mprog;
}

type node_state = {
  x : Value.t array;
  vc : int array;  (** vc.(j) = number of j's updates applied here *)
  mutable pending : update_msg list;
  (* (ns, version) tag of the current value of each object, for the
     recorder. *)
  tags : (int * int) array;
  (* per-origin per-object write counters (deterministic across
     replicas thanks to per-origin FIFO application). *)
  write_counts : int array array;
}

let create ?fault engine ~n ~n_objects ~latency ~rng ~recorder : Store.t =
  let net = Transport.create ?fault engine ~n ~latency ~rng:(Rng.split rng) in
  let states =
    Array.init n (fun _ ->
        {
          x = Array.make n_objects Value.initial;
          vc = Array.make n 0;
          pending = [];
          tags = Array.make n_objects (0, 0);
          write_counts = Array.init n (fun _ -> Array.make n_objects 0);
        })
  in
  (* Apply an update at [node]; returns the recorder payload pieces. *)
  let apply node (u : update_msg) =
    let st = states.(node) in
    let ops = ref [] in
    let written = ref [] in
    let reads = ref [] in
    let rd o =
      let v = st.x.(o) in
      ops := Op.read o v :: !ops;
      if (not (List.mem o !written))
         && not (List.exists (fun (o', _, _) -> o' = o) !reads)
      then begin
        let ns, ver = st.tags.(o) in
        reads := (o, ver, ns) :: !reads
      end;
      v
    in
    let wr o v =
      ops := Op.write o v :: !ops;
      st.x.(o) <- v;
      if not (List.mem o !written) then written := o :: !written
    in
    let result = Prog.run u.mprog.Prog.prog ~read:rd ~write:wr in
    let writes =
      List.rev_map
        (fun o ->
          let c = st.write_counts.(u.origin).(o) + 1 in
          st.write_counts.(u.origin).(o) <- c;
          st.tags.(o) <- (u.origin + 1, c);
          (o, c, u.origin + 1))
        !written
    in
    st.vc.(u.origin) <- st.vc.(u.origin) + 1;
    (result, List.rev !ops, List.rev !reads, writes)
  in
  (* Causal deliverability of a remote update at [node]. *)
  let deliverable node (u : update_msg) =
    let st = states.(node) in
    let ok = ref (u.vc.(u.origin) = st.vc.(u.origin) + 1) in
    Array.iteri
      (fun j v -> if j <> u.origin && v > st.vc.(j) then ok := false)
      u.vc;
    !ok
  in
  let rec drain node =
    let st = states.(node) in
    match List.find_opt (deliverable node) st.pending with
    | None -> ()
    | Some u ->
      st.pending <- List.filter (fun p -> p != u) st.pending;
      ignore (apply node u);
      drain node
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src (u : update_msg) ->
        states.(node).pending <- states.(node).pending @ [ u ];
        drain node)
  done;
  let zero_ts () = Array.make n_objects 0 in
  let invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if Prog.is_query m then begin
      let st = states.(proc) in
      let ops = ref [] in
      let reads = ref [] in
      let rd o =
        let v = st.x.(o) in
        ops := Op.read o v :: !ops;
        if not (List.exists (fun (o', _, _) -> o' = o) !reads) then begin
          let ns, ver = st.tags.(o) in
          reads := (o, ver, ns) :: !reads
        end;
        v
      in
      let wr o _ = raise (Apply.Query_wrote o) in
      let result = Prog.run m.Prog.prog ~read:rd ~write:wr in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops = List.rev !ops;
          reads = List.rev !reads;
          writes = [];
          start_ts = zero_ts ();
          finish_ts = zero_ts ();
          sync = None;
        };
      k result
    end
    else begin
      (* Apply locally, respond, flood to the other replicas. *)
      let st = states.(proc) in
      let vc = Array.copy st.vc in
      vc.(proc) <- vc.(proc) + 1;
      let u = { origin = proc; vc; mprog = m } in
      let result, ops, reads, writes = apply proc u in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops;
          reads;
          writes;
          start_ts = zero_ts ();
          finish_ts = zero_ts ();
          sync = None;
        };
      for dst = 0 to n - 1 do
        if dst <> proc then Transport.send net ~src:proc ~dst u
      done;
      k result
    end
  in
  {
    Store.name = "causal";
    invoke;
    messages_sent = (fun () -> Transport.messages_sent net);
  }
