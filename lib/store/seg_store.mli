(** Coordination-avoidance store ([seg]): confluent m-operations (per
    {!Mmc_fastpath.Classify}) execute locally with zero messages;
    sequenced ones escalate to the atomic broadcast behind a barrier
    that first flushes locally-applied operations into the global
    order.  See the implementation header for the full protocol and
    its soundness argument; every run is re-checked by the Theorem-7
    oracle. *)

open Mmc_sim
open Mmc_broadcast

type stats = {
  mutable fast : int;  (** confluent updates applied locally *)
  mutable fast_queries : int;  (** queries answered locally *)
  mutable escalated : int;  (** sequenced operations broadcast *)
  mutable flushes : int;  (** [Flush_req] messages sent *)
  mutable carried : int;  (** flush entries shipped inside barriers *)
  mutable sealed_waits : int;  (** fast updates queued behind a seal *)
}

(** [finalize] assigns synchronization positions to never-flushed tail
    entries and hands their records to the recorder — the runner must
    call it after quiescence, before building the history.
    [oldest_pending] is the earliest invocation time still buffered
    anywhere (streaming consumers hold their reorder watermark at
    it). *)
type handle = {
  stats : stats;
  oldest_pending : unit -> int option;
  finalize : unit -> unit;
}

(** Placement of fast operations in the synchronization order at
    [finalize]: [Dense] (default) records carried entries at delivery
    and appends never-flushed tails after every broadcast position —
    sound for a stand-alone store and keeps positions stable for
    streaming consumers; [Frontier] withholds fast records until
    finalize and re-keys the whole order by a hybrid clock (sequenced
    updates at the running maximum of first-delivery instants, fast
    operations at their execution instant) — required when per-shard
    chains are composed with cross-shard process order (the sharded
    store), where no delivery-time placement is acyclic. *)
type tail_order = Dense | Frontier

val create :
  ?fault:Fault.t ->
  ?reliable:Reliable.config ->
  ?batch:Batch.t ->
  ?mode:Mmc_fastpath.Classify.mode ->
  ?tail:tail_order ->
  ?ownership:Mmc_fastpath.Ownership.t ->
  ?fsink:(handle -> unit) ->
  Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Latency.t ->
  rng:Rng.t ->
  abcast_impl:Abcast.impl ->
  recorder:Recorder.t ->
  Store.t
