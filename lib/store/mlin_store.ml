(** The m-linearizability protocol (paper, Figure 6).

    Updates are handled exactly as in the m-SC protocol (A1/A2).  To
    keep queries from reading stale values, a query sends a "query"
    message to every process (A3); each process replies with its copy
    of the shared objects and its timestamp (A4); the issuer keeps the
    freshest reply — replica timestamps are totally ordered because
    every replica's state is a prefix of the atomic broadcast sequence
    — (A5), and once all [n] replies arrived it executes the query
    against that copy and responds (A6).

    No clock synchronization or message-delay bound is assumed: this is
    the paper's improvement over the Attiya–Welch linearizability
    algorithm. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast

type upd_payload = {
  origin : int;
  mprog : Prog.mprog;
  inv : Types.time;
  k : Value.t -> unit;
}

type query_msg =
  | Query of { qid : int; origin : int }
  | Reply of { qid : int; x : Value.t array; ts : int array }

type pending_query = {
  mutable othx : Value.t array;
  mutable othts : int array;
  mutable replies : int;
  q_mprog : Prog.mprog;
  q_inv : Types.time;
  q_k : Value.t -> unit;
}

let create ?fault ?reliable ?batch engine ~n ~n_objects ~latency ~rng
    ~abcast_impl ~recorder : Store.t =
  let xs = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let tss = Array.init n (fun _ -> Array.make n_objects 0) in
  let delivered = Array.make n 0 in
  let deliver ~node ~origin:_ payload =
    let position = delivered.(node) in
    delivered.(node) <- position + 1;
    let start_ts =
      if node = payload.origin then Some (Array.copy tss.(node)) else None
    in
    let applied = Apply.update xs.(node) tss.(node) ~ns:0 payload.mprog.Prog.prog in
    if node = payload.origin then begin
      let resp = Engine.now engine in
      Recorder.add recorder
        {
          Recorder.proc = payload.origin;
          inv = payload.inv;
          resp;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = applied.Apply.writes;
          start_ts = Option.get start_ts;
          finish_ts = Array.copy tss.(node);
          sync = Some position;
        };
      payload.k applied.Apply.result
    end
  in
  let abcast =
    (Select.factory abcast_impl) ?fault ?reliable ?batch engine ~n ~latency
      ~rng:(Rng.split rng) ~deliver
  in
  let qnet = Transport.create ?fault engine ~n ~latency ~rng:(Rng.split rng) in
  let pending : (int, pending_query) Hashtbl.t = Hashtbl.create 16 in
  let next_qid = ref 0 in
  for node = 0 to n - 1 do
    Transport.set_handler qnet node (fun _src msg ->
        match msg with
        | Query { qid; origin } ->
          (* (A4): reply with a snapshot of the local copy. *)
          Transport.send qnet ~src:node ~dst:origin
            (Reply { qid; x = Array.copy xs.(node); ts = Array.copy tss.(node) })
        | Reply { qid; x; ts } ->
          let st = Hashtbl.find pending qid in
          (* (A5): keep the freshest reply. *)
          if Version_vector.lt st.othts ts then begin
            st.othx <- x;
            st.othts <- ts
          end;
          st.replies <- st.replies + 1;
          if st.replies = n then begin
            (* (A6): all replies received — execute and respond. *)
            Hashtbl.remove pending qid;
            let applied = Apply.query st.othx st.othts ~ns:0 st.q_mprog.Prog.prog in
            let resp = Engine.now engine in
            Recorder.add recorder
              {
                Recorder.proc = node;
                inv = st.q_inv;
                resp;
                ops = applied.Apply.ops;
                reads = applied.Apply.reads;
                writes = [];
                start_ts = Array.copy st.othts;
                finish_ts = Array.copy st.othts;
                sync = None;
              };
            st.q_k applied.Apply.result
          end)
  done;
  let invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if Prog.is_query m then begin
      (* (A3): ask every process for its copy. *)
      let qid = !next_qid in
      incr next_qid;
      Hashtbl.replace pending qid
        {
          othx = Array.make n_objects Value.initial;
          othts = Array.make n_objects 0;
          replies = 0;
          q_mprog = m;
          q_inv = now;
          q_k = k;
        };
      Transport.send_all qnet ~src:proc (Query { qid; origin = proc })
    end
    else
      Abcast.broadcast abcast ~src:proc { origin = proc; mprog = m; inv = now; k }
  in
  {
    Store.name = "mlin";
    invoke;
    messages_sent =
      (fun () -> Abcast.messages_sent abcast + Transport.messages_sent qnet);
  }
