(** Shared program-application logic for the protocol stores.

    Executes a program against a replica's copy of the shared objects
    and its version vector, collecting the information the recorder
    needs: the operation list, the external reads with the versions
    read, and the final writes with the versions they establish.
    Version entries of written objects are bumped once per object after
    the program finishes — exactly action (A2)'s
    [forall x in wobjects(a): ts[x]++]. *)

open Mmc_core

type applied = {
  result : Value.t;
  ops : Op.t list;
  reads : (Types.obj_id * int * int) list;  (** (object, version, ns) *)
  writes : (Types.obj_id * int * int) list;  (** (object, new version, ns) *)
}

(** Apply an (update or query) program to the replica state [(x, ts)],
    mutating both. *)
let update (x : Value.t array) (ts : int array) ~ns prog =
  let ops = ref [] in
  let written = ref [] in
  let reads = ref [] in
  let rd o =
    let v = x.(o) in
    ops := Op.read o v :: !ops;
    if (not (List.mem o !written))
       && not (List.exists (fun (o', _, _) -> o' = o) !reads)
    then reads := (o, ts.(o), ns) :: !reads;
    v
  in
  let wr o v =
    ops := Op.write o v :: !ops;
    x.(o) <- v;
    if not (List.mem o !written) then written := o :: !written
  in
  let result = Prog.run prog ~read:rd ~write:wr in
  let writes =
    List.rev_map
      (fun o ->
        ts.(o) <- ts.(o) + 1;
        (o, ts.(o), ns))
      !written
  in
  { result; ops = List.rev !ops; reads = List.rev !reads; writes }

(** Namespace-tracking variant for stores whose replica state mixes
    version namespaces (the [seg] store records fast-path writes under
    a per-replica namespace when the classifier is untrusted):
    [ns_of.(o)] is the namespace of the version currently held by
    object [o]; reads report it, and writes re-home the object under
    [writer_ns]. *)
let update_ns (x : Value.t array) (ts : int array) (ns_of : int array)
    ~writer_ns prog =
  let ops = ref [] in
  let written = ref [] in
  let reads = ref [] in
  let rd o =
    let v = x.(o) in
    ops := Op.read o v :: !ops;
    if (not (List.mem o !written))
       && not (List.exists (fun (o', _, _) -> o' = o) !reads)
    then reads := (o, ts.(o), ns_of.(o)) :: !reads;
    v
  in
  let wr o v =
    ops := Op.write o v :: !ops;
    x.(o) <- v;
    if not (List.mem o !written) then written := o :: !written
  in
  let result = Prog.run prog ~read:rd ~write:wr in
  let writes =
    List.rev_map
      (fun o ->
        ts.(o) <- ts.(o) + 1;
        ns_of.(o) <- writer_ns;
        (o, ts.(o), writer_ns))
      !written
  in
  { result; ops = List.rev !ops; reads = List.rev !reads; writes }

exception Query_wrote of Types.obj_id

(** Apply a query program to a snapshot; writing is a protocol
    violation (the caller declared an empty write set). *)
let query (x : Value.t array) (ts : int array) ~ns prog =
  let ops = ref [] in
  let reads = ref [] in
  let rd o =
    let v = x.(o) in
    ops := Op.read o v :: !ops;
    if not (List.exists (fun (o', _, _) -> o' = o) !reads) then
      reads := (o, ts.(o), ns) :: !reads;
    v
  in
  let wr o _ = raise (Query_wrote o) in
  let result = Prog.run prog ~read:rd ~write:wr in
  { result; ops = List.rev !ops; reads = List.rev !reads; writes = [] }

(** Namespace-tracking query: reads report the namespace of the
    version currently held (see {!update_ns}). *)
let query_ns (x : Value.t array) (ts : int array) (ns_of : int array) prog =
  let ops = ref [] in
  let reads = ref [] in
  let rd o =
    let v = x.(o) in
    ops := Op.read o v :: !ops;
    if not (List.exists (fun (o', _, _) -> o' = o) !reads) then
      reads := (o, ts.(o), ns_of.(o)) :: !reads;
    v
  in
  let wr o _ = raise (Query_wrote o) in
  let result = Prog.run prog ~read:rd ~write:wr in
  { result; ops = List.rev !ops; reads = List.rev !reads; writes = [] }
