(** Distributed strict two-phase locking over sharded owner copies:
    object [x] lives at node [x mod n]; an m-operation locks its touch
    set in ascending order (deadlock-free), executes via owner RPCs,
    responds, and releases.  Strictly serializable, hence
    m-linearizable — the database-style comparison point; contention
    appears as lock-queue waiting rather than broadcast delay.

    Programs must respect their declared sets: a read outside
    [may_touch] or a write outside [may_write] raises
    [Invalid_argument]. *)

(** [fault] attaches a fault injector: all of the protocol's traffic
    then runs over the reliable ack/retransmit transport and survives
    message loss, partitions and crash/recovery windows. *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  recorder:Recorder.t ->
  Store.t
