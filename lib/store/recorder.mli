(** Execution recorder: turns protocol runs into checkable histories
    with exact reads-from, via (namespace, object, version)
    identification of writers. *)

open Mmc_core

type record = {
  proc : Types.proc_id;
  inv : Types.time;
  resp : Types.time;
  ops : Op.t list;
  reads : (Types.obj_id * int * int) list;
      (** external reads: (object, version, namespace) *)
  writes : (Types.obj_id * int * int) list;
      (** final writes: (object, new version, namespace) *)
  start_ts : Version_vector.t;
  finish_ts : Version_vector.t;
  sync : int option;
      (** position in the synchronization (atomic broadcast) total
          order, when the protocol has one *)
}

type t

val create : n_objects:int -> t
val add : t -> record -> unit
val count : t -> int

(** Records in the order they were added. *)
val records : t -> record list

(** Hand the accumulated records over (in add order) and forget them:
    a streaming consumer drains periodically so resident record state
    is bounded by the drain interval, not the run length.  {!count}
    keeps the cumulative total; a drained recorder can no longer build
    the full history. *)
val drain : t -> record list

(** A recorder pre-loaded with [records] (in order), as if each had
    been {!add}ed — lets a stitching layer (e.g. the sharded store's
    {!Mmc_shard.Shard_recorder}) rebuild histories from remapped
    records through the same numbering and reads-from resolution. *)
val of_records : n_objects:int -> record list -> t

(** Rewrite every recorded synchronization position through a strictly
    monotone map — lets a store re-number its broadcast order at the
    end of a run (the seg store's frontier-ordered finalize). *)
val remap_sync : t -> (int -> int) -> unit

exception Inconsistent_versions of string

(** Build the history (m-operations numbered in invocation order;
    version-0 reads resolve to the initializer) and the timestamp
    table for the P 5.x validators. *)
val to_history : t -> History.t * (Types.mop_id, Version_vector.stamped) Hashtbl.t

(** Like {!to_history}, also returning the synchronization order: the
    ids of synchronized updates in atomic-broadcast order.  Adding
    these as edges to the m-SC base relation installs the
    WW-constraint, enabling the polynomial Theorem 7 checker on
    protocol traces. *)
val to_history_full :
  t ->
  History.t
  * (Types.mop_id, Version_vector.stamped) Hashtbl.t
  * Types.mop_id list
