(** Recoverable m-sequential-consistency store (Figure 4 protocol plus
    crash recovery).

    The msc protocol with per-replica durable state: every delivered
    update is logged to a {!Mmc_recovery.Rlog} (WAL + periodic
    checkpoint) before the event ends, keyed by its global broadcast
    position from the recoverable broadcast ({!Mmc_broadcast.Rbcast}).
    A wipe-crash destroys a replica's volatile state — object copies,
    version vector, delivery cursor and reorder buffer; on restart the
    replica reloads its latest checkpoint, replays the WAL suffix, and
    runs anti-entropy catch-up ({!Mmc_recovery.Catchup}) against its
    peers for the positions delivered while it was down.  A durable
    per-replica responded set makes responses exactly-once across
    replay, and client-library state (continuations, request numbers)
    lives outside the replica, so a recovered origin still answers the
    invocations it lost.

    Queries stay communication-free: they read the local prefix state,
    which is always a legal m-s.c. snapshot, so a freshly replayed
    replica can serve them before catch-up completes.  Clients whose
    replica is down retry until it is back and replayed. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast
open Mmc_recovery

type payload = {
  origin : int;
  oseq : int;  (** per-origin invocation number (responded-set key) *)
  mprog : Prog.mprog;
  inv : Types.time;
}

type snap = { sxs : Value.t array; stss : int array }

type handle = {
  cursors : unit -> int array;
  converged : unit -> bool;
  log_stats : unit -> Rlog.stats array;
  broadcast_stats : unit -> Rbcast.stats;
  pulls : unit -> int;
  pushes : unit -> int;
  entries_pushed : unit -> int;
  snapshots_pushed : unit -> int;
  recoveries : unit -> int;
}

let retry_every = 15
let poll_budget = 200

let create ?fault ?reliable ?(policy = Rlog.default_policy) ?sink engine ~n
    ~n_objects ~latency ~rng ~abcast_impl ~recorder : Store.t =
  Rlog.validate_policy policy;
  let plan = match fault with Some f -> Fault.plan f | None -> Fault.none in
  let up node now = Fault.up_in_plan plan ~now ~node in
  (* Volatile replica state — destroyed by a wipe-crash. *)
  let xs = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let tss = Array.init n (fun _ -> Array.make n_objects 0) in
  let cursors = Array.make n 0 in
  let pending : (int, int * payload option) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  let ready = Array.make n true in
  (* Durable replica state. *)
  let rlogs : (snap, payload) Rlog.t array =
    Array.init n (fun _ -> Rlog.create policy)
  in
  let responded : (int, unit) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  (* Client-library state (outside the replica, survives wipes). *)
  let ks : (int * int, Value.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let oseqs = Array.make n 0 in
  let recoveries = ref 0 in
  let snapshot_of node =
    { sxs = Array.copy xs.(node); stss = Array.copy tss.(node) }
  in
  let apply_one node ~replay ~pos ~origin (p : payload option) =
    (match p with
    | None -> () (* epoch-fence hole: advance past it *)
    | Some lp ->
      let start_ts = Array.copy tss.(node) in
      let applied = Apply.update xs.(node) tss.(node) ~ns:0 lp.mprog.Prog.prog in
      if origin = node && not (Hashtbl.mem responded.(node) lp.oseq) then begin
        Hashtbl.replace responded.(node) lp.oseq ();
        Recorder.add recorder
          {
            Recorder.proc = node;
            inv = lp.inv;
            resp = Engine.now engine;
            ops = applied.Apply.ops;
            reads = applied.Apply.reads;
            writes = applied.Apply.writes;
            start_ts;
            finish_ts = Array.copy tss.(node);
            sync = Some pos;
          };
        match Hashtbl.find_opt ks (node, lp.oseq) with
        | Some k ->
          Hashtbl.remove ks (node, lp.oseq);
          k applied.Apply.result
        | None -> ()
      end);
    cursors.(node) <- pos + 1;
    if not replay then
      Rlog.log rlogs.(node)
        { Wal.pos; origin; payload = p }
        ~snapshot:(fun () -> snapshot_of node)
  in
  let rec drain node =
    match Hashtbl.find_opt pending.(node) cursors.(node) with
    | None -> ()
    | Some (origin, p) ->
      let pos = cursors.(node) in
      Hashtbl.remove pending.(node) pos;
      apply_one node ~replay:false ~pos ~origin p;
      drain node
  in
  (* Anti-entropy: the catch-up transport shares the engine, latency
     model and fault injector with the broadcast's transport. *)
  let targets = Array.make n 0 in
  let recovering = Array.make n false in
  let catchup = ref None in
  let ingest node ~pos ~origin p =
    if pos = cursors.(node) then begin
      apply_one node ~replay:false ~pos ~origin p;
      drain node
    end
    else if pos > cursors.(node) then
      Hashtbl.replace pending.(node) pos (origin, p)
  in
  let serve ~node ~from =
    let rl = rlogs.(node) in
    if Rlog.serves_from rl ~from then (cursors.(node), None, Rlog.serve rl ~from)
    else
      let snap = Checkpoint.load (Rlog.checkpoint rl) in
      let from' = match snap with Some (p, _) -> p | None -> 0 in
      (cursors.(node), snap, Rlog.serve rl ~from:from')
  in
  let learn ~node ~peer_cursor ~snap entries =
    targets.(node) <- max targets.(node) peer_cursor;
    (match snap with
    | Some (cpos, s) when cpos > cursors.(node) ->
      (* Full state transfer: our retained log no longer reaches back
         to our cursor at any peer.  Install the snapshot and make it
         our own recovery point. *)
      xs.(node) <- Array.copy s.sxs;
      tss.(node) <- Array.copy s.stss;
      cursors.(node) <- cpos;
      let ck = Rlog.checkpoint rlogs.(node) in
      let covered =
        match Checkpoint.load ck with Some (p, _) -> p | None -> -1
      in
      if cpos > covered then Checkpoint.save ck ~pos:cpos (snapshot_of node);
      Hashtbl.iter
        (fun pos _ -> if pos < cpos then Hashtbl.remove pending.(node) pos)
        (Hashtbl.copy pending.(node))
    | _ -> ());
    List.iter
      (fun (e : payload Wal.entry) ->
        ingest node ~pos:e.Wal.pos ~origin:e.Wal.origin e.Wal.payload)
      entries;
    drain node
  in
  (* Gap polling: while a replica has buffered positions above a hole
     in its sequence (or is catching up to a peer's cursor), pull from
     peers every [policy.gap_poll] ticks.  Bounded so the simulation
     quiesces even if a gap is unservable. *)
  let poll_armed = Array.make n false in
  let poll_attempts = Array.make n 0 in
  let poll_cursor = Array.make n (-1) in
  let rec arm_poll node =
    if not poll_armed.(node) then begin
      poll_armed.(node) <- true;
      Engine.schedule engine ~delay:policy.Rlog.gap_poll (fun () ->
          poll_armed.(node) <- false;
          if cursors.(node) > poll_cursor.(node) then poll_attempts.(node) <- 0
          else poll_attempts.(node) <- poll_attempts.(node) + 1;
          poll_cursor.(node) <- cursors.(node);
          let behind =
            Hashtbl.length pending.(node) > 0
            || cursors.(node) < targets.(node)
          in
          if behind && poll_attempts.(node) < poll_budget then begin
            (match !catchup with
            | Some c -> Catchup.pull c ~node ~from:cursors.(node)
            | None -> ());
            arm_poll node
          end
          else if not behind then recovering.(node) <- false)
    end
  in
  let ingest node ~pos ~origin p =
    ingest node ~pos ~origin p;
    if Hashtbl.length pending.(node) > 0 then arm_poll node
  in
  let rbcast =
    (Select.recoverable abcast_impl) ?fault ?reliable engine ~n ~latency
      ~rng:(Rng.split rng)
      ~deliver:(fun ~node ~origin ~pos p -> ingest node ~pos ~origin p)
  in
  catchup :=
    Some
      (Catchup.create ?fault ?config:reliable engine ~n ~latency
         ~rng:(Rng.split rng) ~serve ~learn:(fun ~node ~peer_cursor ~snap es ->
           learn ~node ~peer_cursor ~snap es;
           if Hashtbl.length pending.(node) > 0 || cursors.(node) < targets.(node)
           then arm_poll node));
  (* Wipe-crash and restart events, straight from the fault plan (the
     injector below the transports makes the down window itself; here
     we destroy and rebuild the replica state at its edges). *)
  List.iter
    (fun (c : Fault.crash) ->
      Engine.at engine ~time:c.at (fun () ->
          ready.(c.node) <- false;
          xs.(c.node) <- Array.make n_objects Value.initial;
          tss.(c.node) <- Array.make n_objects 0;
          cursors.(c.node) <- 0;
          Hashtbl.reset pending.(c.node));
      Engine.at engine ~time:c.back (fun () ->
          let snap, replay = Rlog.recover rlogs.(c.node) in
          (match snap with
          | Some (cpos, s) ->
            xs.(c.node) <- Array.copy s.sxs;
            tss.(c.node) <- Array.copy s.stss;
            cursors.(c.node) <- cpos
          | None -> ());
          List.iter
            (fun (e : payload Wal.entry) ->
              if e.Wal.pos = cursors.(c.node) then
                apply_one c.node ~replay:true ~pos:e.Wal.pos ~origin:e.Wal.origin
                  e.Wal.payload)
            replay;
          ready.(c.node) <- true;
          recovering.(c.node) <- true;
          incr recoveries;
          (match fault with Some f -> Fault.note_restart f | None -> ());
          (match !catchup with
          | Some cu -> Catchup.pull cu ~node:c.node ~from:cursors.(c.node)
          | None -> ());
          poll_attempts.(c.node) <- 0;
          arm_poll c.node))
    (Fault.wipes plan);
  let rec invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if not (up proc now && ready.(proc)) then
      (* The replica is down or still replaying: the client library
         retries until it can reach it. *)
      Engine.schedule engine ~delay:retry_every (fun () -> invoke ~proc m ~k)
    else if Prog.is_query m then begin
      let ts = tss.(proc) in
      let applied = Apply.query xs.(proc) ts ~ns:0 m.Prog.prog in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = [];
          start_ts = Array.copy ts;
          finish_ts = Array.copy ts;
          sync = None;
        };
      k applied.Apply.result
    end
    else begin
      let oseq = oseqs.(proc) in
      oseqs.(proc) <- oseq + 1;
      Hashtbl.replace ks (proc, oseq) k;
      Rbcast.broadcast rbcast ~src:proc
        { origin = proc; oseq; mprog = m; inv = now }
    end
  in
  (match sink with
  | None -> ()
  | Some f ->
    f
      {
        cursors = (fun () -> Array.copy cursors);
        converged =
          (fun () ->
            Array.for_all (fun c -> c = cursors.(0)) cursors
            && Array.for_all (fun x -> x = xs.(0)) xs
            && Array.for_all (fun t -> t = tss.(0)) tss);
        log_stats = (fun () -> Array.map Rlog.stats rlogs);
        broadcast_stats = (fun () -> Rbcast.stats rbcast);
        pulls = (fun () -> Catchup.pulls (Option.get !catchup));
        pushes = (fun () -> Catchup.pushes (Option.get !catchup));
        entries_pushed =
          (fun () -> Catchup.entries_pushed (Option.get !catchup));
        snapshots_pushed =
          (fun () -> Catchup.snapshots_pushed (Option.get !catchup));
        recoveries = (fun () -> !recoveries);
      });
  {
    Store.name = "rmsc";
    invoke;
    messages_sent =
      (fun () ->
        Rbcast.messages_sent rbcast
        + Catchup.messages_sent (Option.get !catchup));
  }
