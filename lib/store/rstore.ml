(** Recoverable m-sequential-consistency store (Figure 4 protocol plus
    crash recovery).

    The msc protocol with per-replica durable state: every delivered
    update is logged to a {!Mmc_recovery.Rlog} (WAL + periodic
    checkpoint) before the event ends, keyed by its global broadcast
    position from the recoverable broadcast ({!Mmc_broadcast.Rbcast}).
    A wipe-crash destroys a replica's volatile state — object copies,
    version vector, delivery cursor, reorder buffer and stability
    bookkeeping; on restart the replica reloads its latest checkpoint,
    replays the WAL suffix, and runs anti-entropy catch-up
    ({!Mmc_recovery.Catchup}) against its peers for the positions
    delivered while it was down.  A durable per-replica responded set
    makes responses exactly-once across replay, and client-library
    state (continuations, request numbers) lives outside the replica,
    so a recovered origin still answers the invocations it lost.

    Delivery is {e quorum-stable} by default: a position delivered by
    the broadcast is buffered and acknowledged to all replicas on a
    stability wire, and applied to object state only once a majority
    (self included) has acknowledged its exact stamping
    [(pos, origin, oseq)].  By quorum intersection a majority-acked
    stamping is present in every sequencer takeover sync, so it is
    never fenced or renumbered — the DESIGN.md §12 optimistic-delivery
    anomaly becomes impossible rather than merely detected.  Positions
    ingested from a peer's WAL (catch-up) or replayed from our own are
    already applied somewhere, hence stable by construction and marked
    [forced].  [Optimistic] mode applies on delivery, skipping acks —
    kept for comparison; under wipe-crashes across epoch changes it
    can diverge (a retraction may arrive after the stamp was applied),
    which the convergence oracle detects.

    Queries stay communication-free: they read the local prefix state,
    which is always a legal m-s.c. snapshot, so a freshly replayed
    replica can serve them before catch-up completes.  Clients whose
    replica is down retry until it is back and replayed. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast
open Mmc_recovery

type mode = Optimistic | Stable

let pp_mode ppf = function
  | Optimistic -> Fmt.string ppf "optimistic"
  | Stable -> Fmt.string ppf "stable"

let mode_of_string = function
  | "optimistic" -> Some Optimistic
  | "stable" -> Some Stable
  | _ -> None

type payload = {
  origin : int;
  oseq : int;  (** per-origin invocation number (responded-set key) *)
  mprog : Prog.mprog;
  inv : Types.time;
}

type snap = { sxs : Value.t array; stss : int array }

type handle = {
  mode : mode;
  cursors : unit -> int array;
  converged : unit -> bool;
  log_stats : unit -> Rlog.stats array;
  broadcast_stats : unit -> Rbcast.stats;
  detector_stats : unit -> Detector.stats option;
  pulls : unit -> int;
  pushes : unit -> int;
  entries_pushed : unit -> int;
  snapshots_pushed : unit -> int;
  recoveries : unit -> int;
  stability_acks : unit -> int;
}

let retry_every = 15
let poll_budget = 200

let create ?fault ?reliable ?batch ?detector ?(mode = Stable)
    ?(policy = Rlog.default_policy) ?sink engine ~n ~n_objects ~latency ~rng
    ~abcast_impl ~recorder : Store.t =
  Rlog.validate_policy policy;
  let plan = match fault with Some f -> Fault.plan f | None -> Fault.none in
  let up node now = Fault.up_in_plan plan ~now ~node in
  let quorum = (n / 2) + 1 in
  (* Volatile replica state — destroyed by a wipe-crash. *)
  let xs = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let tss = Array.init n (fun _ -> Array.make n_objects 0) in
  let cursors = Array.make n 0 in
  let pending : (int, int * payload option) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  (* Stability bookkeeping (volatile): per exact stamping, the set of
     replicas that acknowledged it; [forced] positions are stable by
     provenance (peer WAL or own replay — applied somewhere already). *)
  let ackers : (int * int * int, (int, unit) Hashtbl.t) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  let forced : (int, unit) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  let ready = Array.make n true in
  (* Durable replica state. *)
  let rlogs : (snap, payload) Rlog.t array =
    Array.init n (fun _ -> Rlog.create policy)
  in
  let responded : (int, unit) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  (* Client-library state (outside the replica, survives wipes). *)
  let ks : (int * int, Value.t -> unit) Hashtbl.t = Hashtbl.create 16 in
  let oseqs = Array.make n 0 in
  let recoveries = ref 0 in
  let snapshot_of node =
    { sxs = Array.copy xs.(node); stss = Array.copy tss.(node) }
  in
  let purge_stability node pos =
    Hashtbl.remove forced.(node) pos;
    let dead =
      Hashtbl.fold
        (fun ((p, _, _) as key) _ acc -> if p = pos then key :: acc else acc)
        ackers.(node) []
    in
    List.iter (Hashtbl.remove ackers.(node)) dead
  in
  let apply_one node ~replay ~pos ~origin (p : payload option) =
    (match p with
    | None -> () (* epoch-fence hole: advance past it *)
    | Some lp ->
      let start_ts = Array.copy tss.(node) in
      let applied = Apply.update xs.(node) tss.(node) ~ns:0 lp.mprog.Prog.prog in
      if origin = node && not (Hashtbl.mem responded.(node) lp.oseq) then begin
        Hashtbl.replace responded.(node) lp.oseq ();
        Recorder.add recorder
          {
            Recorder.proc = node;
            inv = lp.inv;
            resp = Engine.now engine;
            ops = applied.Apply.ops;
            reads = applied.Apply.reads;
            writes = applied.Apply.writes;
            start_ts;
            finish_ts = Array.copy tss.(node);
            sync = Some pos;
          };
        match Hashtbl.find_opt ks (node, lp.oseq) with
        | Some k ->
          Hashtbl.remove ks (node, lp.oseq);
          k applied.Apply.result
        | None -> ()
      end);
    cursors.(node) <- pos + 1;
    purge_stability node pos;
    if not replay then
      Rlog.log rlogs.(node)
        { Wal.pos; origin; payload = p }
        ~snapshot:(fun () -> snapshot_of node)
  in
  (* Is the position at the head of [node]'s sequence safe to apply?
     Holes are quorum-backed upstream (a formed epoch declared them);
     payloads need a majority ack of their exact stamping unless their
     provenance already proves stability. *)
  let stable_head node pos p =
    mode = Optimistic
    ||
    match p with
    | None -> true
    | Some lp ->
      Hashtbl.mem forced.(node) pos
      || (match Hashtbl.find_opt ackers.(node) (pos, lp.origin, lp.oseq) with
         | Some s -> Hashtbl.length s >= quorum
         | None -> false)
  in
  let rec drain node =
    match Hashtbl.find_opt pending.(node) cursors.(node) with
    | None -> ()
    | Some (origin, p) ->
      let pos = cursors.(node) in
      if stable_head node pos p then begin
        Hashtbl.remove pending.(node) pos;
        apply_one node ~replay:false ~pos ~origin p;
        drain node
      end
  in
  (* The stability wire: reliable fan-out of [(pos, origin, oseq)]
     acknowledgements, sharing the engine/latency/fault stack with the
     broadcast's transport. *)
  let stab_net : (int * int * int) Transport.t =
    Transport.create ?fault ?config:reliable engine ~n ~latency
      ~rng:(Rng.split rng)
  in
  (* Handlers are registered below, once the gap-polling machinery
     they fall back on exists. *)
  (* First local delivery of a stamping: record our own ack and tell
     everyone else. *)
  let announce node ~pos (lp : payload) =
    let key = (pos, lp.origin, lp.oseq) in
    let set =
      match Hashtbl.find_opt ackers.(node) key with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 4 in
        Hashtbl.replace ackers.(node) key s;
        s
    in
    if not (Hashtbl.mem set node) then begin
      Hashtbl.replace set node ();
      for dst = 0 to n - 1 do
        if dst <> node then Transport.send stab_net ~src:node ~dst key
      done
    end
  in
  (* Anti-entropy: the catch-up transport shares the engine, latency
     model and fault injector with the broadcast's transport. *)
  let targets = Array.make n 0 in
  let recovering = Array.make n false in
  let catchup = ref None in
  let ingest ?(proven = false) node ~pos ~origin p =
    if pos >= cursors.(node) then begin
      if proven then Hashtbl.replace forced.(node) pos ();
      Hashtbl.replace pending.(node) pos (origin, p);
      (match (p, mode) with
      | Some lp, Stable when not proven -> announce node ~pos lp
      | _ -> ());
      drain node
    end
  in
  let retract node ~pos =
    if pos >= cursors.(node) then begin
      Hashtbl.remove pending.(node) pos;
      Hashtbl.remove forced.(node) pos
    end
  in
  let serve ~node ~from =
    let rl = rlogs.(node) in
    if Rlog.serves_from rl ~from then (cursors.(node), None, Rlog.serve rl ~from)
    else
      let snap = Checkpoint.load (Rlog.checkpoint rl) in
      let from' = match snap with Some (p, _) -> p | None -> 0 in
      (cursors.(node), snap, Rlog.serve rl ~from:from')
  in
  let learn ~node ~peer_cursor ~snap entries =
    targets.(node) <- max targets.(node) peer_cursor;
    (match snap with
    | Some (cpos, s) when cpos > cursors.(node) ->
      (* Full state transfer: our retained log no longer reaches back
         to our cursor at any peer.  Install the snapshot and make it
         our own recovery point. *)
      xs.(node) <- Array.copy s.sxs;
      tss.(node) <- Array.copy s.stss;
      cursors.(node) <- cpos;
      let ck = Rlog.checkpoint rlogs.(node) in
      let covered =
        match Checkpoint.load ck with Some (p, _) -> p | None -> -1
      in
      if cpos > covered then Checkpoint.save ck ~pos:cpos (snapshot_of node);
      Hashtbl.iter
        (fun pos _ -> if pos < cpos then Hashtbl.remove pending.(node) pos)
        (Hashtbl.copy pending.(node))
    | _ -> ());
    List.iter
      (fun (e : payload Wal.entry) ->
        (* a peer's WAL entry was applied there, hence quorum-stable *)
        ingest ~proven:true node ~pos:e.Wal.pos ~origin:e.Wal.origin
          e.Wal.payload)
      entries;
    drain node
  in
  (* Gap polling: while a replica has buffered positions above a hole
     in its sequence (or is catching up to a peer's cursor), pull from
     peers every [policy.gap_poll] ticks.  Bounded so the simulation
     quiesces even if a gap is unservable. *)
  let poll_armed = Array.make n false in
  let poll_attempts = Array.make n 0 in
  let poll_cursor = Array.make n (-1) in
  let rec arm_poll node =
    if not poll_armed.(node) then begin
      poll_armed.(node) <- true;
      Engine.schedule engine ~delay:policy.Rlog.gap_poll (fun () ->
          poll_armed.(node) <- false;
          if cursors.(node) > poll_cursor.(node) then poll_attempts.(node) <- 0
          else poll_attempts.(node) <- poll_attempts.(node) + 1;
          poll_cursor.(node) <- cursors.(node);
          let behind =
            Hashtbl.length pending.(node) > 0
            || cursors.(node) < targets.(node)
          in
          if behind && poll_attempts.(node) < poll_budget then begin
            (match !catchup with
            | Some c -> Catchup.pull c ~node ~from:cursors.(node)
            | None -> ());
            arm_poll node
          end
          else if not behind then recovering.(node) <- false)
    end
  in
  let ingest ?proven node ~pos ~origin p =
    ingest ?proven node ~pos ~origin p;
    if Hashtbl.length pending.(node) > 0 then arm_poll node
  in
  for node = 0 to n - 1 do
    Transport.set_handler stab_net node (fun src key ->
        let pos, _, _ = key in
        if pos >= cursors.(node) then begin
          let set =
            match Hashtbl.find_opt ackers.(node) key with
            | Some s -> s
            | None ->
              let s = Hashtbl.create 4 in
              Hashtbl.replace ackers.(node) key s;
              s
          in
          Hashtbl.replace set src ();
          if pos = cursors.(node) then drain node;
          (* A peer acknowledged a position we do not hold: the
             broadcast's delivery to us may be gone for good (lost in
             an epoch no close we will ever learn covers) — treat the
             ack as proof the position exists and fall back to
             anti-entropy.  The poll is a no-op if the delivery makes
             it here first. *)
          if pos >= cursors.(node) && not (Hashtbl.mem pending.(node) pos)
          then begin
            targets.(node) <- max targets.(node) (pos + 1);
            arm_poll node
          end
        end)
  done;
  let rbcast =
    (Select.recoverable abcast_impl) ?fault ?reliable ?batch ?detector
      ~fit:(fun node -> not (Rlog.quarantined rlogs.(node)))
      engine ~n ~latency
      ~rng:(Rng.split rng)
      ~deliver:(fun ~node ~origin ~pos d ->
        match d with
        | Rbcast.Payload p -> ingest node ~pos ~origin (Some p)
        | Rbcast.Hole -> ingest node ~pos ~origin None
        | Rbcast.Retract -> retract node ~pos)
  in
  catchup :=
    Some
      (Catchup.create ?fault ?config:reliable engine ~n ~latency
         ~rng:(Rng.split rng) ~serve
         ~serve_one:(fun ~node ~pos -> Rlog.entry_at rlogs.(node) ~pos)
         ~patch:(fun ~node entries ->
           List.iter
             (fun (e : payload Wal.entry) ->
               ignore (Rlog.patch rlogs.(node) e);
               if e.Wal.pos >= cursors.(node) then
                 ingest ~proven:true node ~pos:e.Wal.pos ~origin:e.Wal.origin
                   e.Wal.payload)
             entries)
         ~learn:(fun ~node ~peer_cursor ~snap es ->
           learn ~node ~peer_cursor ~snap es;
           if Hashtbl.length pending.(node) > 0 || cursors.(node) < targets.(node)
           then arm_poll node));
  (* Storage faults, straight from the plan.  The rng split is taken
     after every other split so pre-storage seeds keep their streams.
     Daemon events: a fault instant past the natural end of the run
     must not extend it. *)
  let storage_rng = Rng.split rng in
  List.iter
    (fun (f : Fault.storage_fault) ->
      Engine.at ~daemon:true engine ~time:f.Fault.at (fun () ->
          ignore (Rlog.inject_tear rlogs.(f.Fault.node) ~rng:storage_rng)))
    plan.Fault.tears;
  List.iter
    (fun (f : Fault.storage_fault) ->
      Engine.at ~daemon:true engine ~time:f.Fault.at (fun () ->
          ignore (Rlog.inject_rot rlogs.(f.Fault.node) ~rng:storage_rng)))
    plan.Fault.rots;
  List.iter
    (fun (f : Fault.storage_fault) ->
      Engine.at ~daemon:true engine ~time:f.Fault.at (fun () ->
          ignore (Rlog.inject_stale rlogs.(f.Fault.node) ~rng:storage_rng)))
    plan.Fault.stales;
  (* Background scrubber: every [scrub_every] ticks each live replica
     re-verifies its retained frames and asks peers to repair what rot
     damaged.  Daemon — scrubbing never keeps the run alive. *)
  if policy.Rlog.scrub_every > 0 && policy.Rlog.crc then
    for node = 0 to n - 1 do
      let rec arm_scrub () =
        Engine.schedule ~daemon:true engine ~delay:policy.Rlog.scrub_every
          (fun () ->
            if up node (Engine.now engine) && ready.(node) then begin
              let damaged = Rlog.scrub rlogs.(node) in
              match !catchup with
              | Some cu -> Catchup.repair cu ~node ~positions:damaged
              | None -> ()
            end;
            arm_scrub ())
      in
      arm_scrub ()
    done;
  (* Wipe-crash and restart events, straight from the fault plan (the
     injector below the transports makes the down window itself; here
     we destroy and rebuild the replica state at its edges). *)
  List.iter
    (fun (c : Fault.crash) ->
      Engine.at engine ~time:c.at (fun () ->
          ready.(c.node) <- false;
          xs.(c.node) <- Array.make n_objects Value.initial;
          tss.(c.node) <- Array.make n_objects 0;
          cursors.(c.node) <- 0;
          Hashtbl.reset pending.(c.node);
          Hashtbl.reset ackers.(c.node);
          Hashtbl.reset forced.(c.node);
          (* The durable indexes are volatile too; the devices
             survive. *)
          Rlog.crash rlogs.(c.node));
      Engine.at engine ~time:c.back (fun () ->
          let r = Rlog.recover_full rlogs.(c.node) in
          (match r.Rlog.rsnap with
          | Some (cpos, s) ->
            xs.(c.node) <- Array.copy s.sxs;
            tss.(c.node) <- Array.copy s.stss;
            cursors.(c.node) <- cpos
          | None -> ());
          List.iter
            (fun (e : payload Wal.entry) ->
              if e.Wal.pos = cursors.(c.node) then
                apply_one c.node ~replay:true ~pos:e.Wal.pos ~origin:e.Wal.origin
                  e.Wal.payload)
            r.Rlog.rreplay;
          ready.(c.node) <- true;
          recovering.(c.node) <- true;
          incr recoveries;
          (match fault with Some f -> Fault.note_restart f | None -> ());
          (* Durable survivors beyond a quarantined gap are stable by
             provenance: buffer them so they apply the moment catch-up
             refills the gap. *)
          List.iter
            (fun (e : payload Wal.entry) ->
              ingest ~proven:true c.node ~pos:e.Wal.pos ~origin:e.Wal.origin
                e.Wal.payload)
            r.Rlog.rorphans;
          (match !catchup with
          | Some cu ->
            Catchup.pull cu ~node:c.node ~from:cursors.(c.node);
            (* Quarantined retained positions: ask peers for verified
               copies right away rather than waiting for a scrub
               pass. *)
            Catchup.repair cu ~node:c.node
              ~positions:
                (List.concat_map
                   (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
                   (Wal.quarantine (Rlog.wal rlogs.(c.node))))
          | None -> ());
          poll_attempts.(c.node) <- 0;
          arm_poll c.node))
    (Fault.wipes plan);
  let rec invoke ~proc (m : Prog.mprog) ~k =
    let now = Engine.now engine in
    if not (up proc now && ready.(proc)) then
      (* The replica is down or still replaying: the client library
         retries until it can reach it. *)
      Engine.schedule engine ~delay:retry_every (fun () -> invoke ~proc m ~k)
    else if Prog.is_query m then begin
      let ts = tss.(proc) in
      let applied = Apply.query xs.(proc) ts ~ns:0 m.Prog.prog in
      Recorder.add recorder
        {
          Recorder.proc;
          inv = now;
          resp = now;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = [];
          start_ts = Array.copy ts;
          finish_ts = Array.copy ts;
          sync = None;
        };
      k applied.Apply.result
    end
    else begin
      let oseq = oseqs.(proc) in
      oseqs.(proc) <- oseq + 1;
      Hashtbl.replace ks (proc, oseq) k;
      Rbcast.broadcast rbcast ~src:proc
        { origin = proc; oseq; mprog = m; inv = now }
    end
  in
  (match sink with
  | None -> ()
  | Some f ->
    f
      {
        mode;
        cursors = (fun () -> Array.copy cursors);
        converged =
          (fun () ->
            Array.for_all (fun c -> c = cursors.(0)) cursors
            && Array.for_all (fun x -> x = xs.(0)) xs
            && Array.for_all (fun t -> t = tss.(0)) tss);
        log_stats = (fun () -> Array.map Rlog.stats rlogs);
        broadcast_stats = (fun () -> Rbcast.stats rbcast);
        detector_stats = (fun () -> Rbcast.detector_stats rbcast);
        pulls = (fun () -> Catchup.pulls (Option.get !catchup));
        pushes = (fun () -> Catchup.pushes (Option.get !catchup));
        entries_pushed =
          (fun () -> Catchup.entries_pushed (Option.get !catchup));
        snapshots_pushed =
          (fun () -> Catchup.snapshots_pushed (Option.get !catchup));
        recoveries = (fun () -> !recoveries);
        stability_acks = (fun () -> Transport.messages_sent stab_net);
      });
  {
    Store.name = "rmsc";
    invoke;
    messages_sent =
      (fun () ->
        Rbcast.messages_sent rbcast
        + Catchup.messages_sent (Option.get !catchup)
        + Transport.messages_sent stab_net);
  }
