(** Recoverable m-sequential-consistency store: the Figure 4 protocol
    over {!Mmc_broadcast.Rbcast} with write-ahead logging, periodic
    checkpoints, wipe-crash restart (checkpoint load + WAL replay) and
    anti-entropy catch-up.  See the implementation header for the
    durability model. *)

open Mmc_recovery

(** Introspection over the recovery machinery, for verification:
    [converged] is true when every replica holds the same cursor,
    object copies and version vector. *)
type handle = {
  cursors : unit -> int array;
  converged : unit -> bool;
  log_stats : unit -> Rlog.stats array;
  broadcast_stats : unit -> Mmc_broadcast.Rbcast.stats;
  pulls : unit -> int;
  pushes : unit -> int;
  entries_pushed : unit -> int;
  snapshots_pushed : unit -> int;
  recoveries : unit -> int;  (** wipe-crash restarts completed *)
}

(** [sink] receives the store's {!handle} at creation (the store
    interface itself stays uniform across kinds). *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?policy:Rlog.policy ->
  ?sink:(handle -> unit) ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  abcast_impl:Mmc_broadcast.Abcast.impl ->
  recorder:Recorder.t ->
  Store.t
