(** Recoverable m-sequential-consistency store: the Figure 4 protocol
    over {!Mmc_broadcast.Rbcast} with write-ahead logging, periodic
    checkpoints, wipe-crash restart (checkpoint load + WAL replay),
    anti-entropy catch-up and quorum-stable delivery.  See the
    implementation header for the durability and stability model. *)

open Mmc_recovery

(** When to apply a delivered position to object state.  [Stable]
    (the default) waits for a majority of replicas to acknowledge the
    exact stamping, which by quorum intersection with the sequencer's
    takeover sync makes applied positions immune to fencing and
    renumbering.  [Optimistic] applies on delivery — cheaper, but a
    wipe-crash across an epoch change can make replicas diverge (the
    DESIGN.md §12 anomaly), which the convergence oracle detects. *)
type mode = Optimistic | Stable

val pp_mode : Format.formatter -> mode -> unit
val mode_of_string : string -> mode option

(** Introspection over the recovery machinery, for verification:
    [converged] is true when every replica holds the same cursor,
    object copies and version vector. *)
type handle = {
  mode : mode;
  cursors : unit -> int array;
  converged : unit -> bool;
  log_stats : unit -> Rlog.stats array;
  broadcast_stats : unit -> Mmc_broadcast.Rbcast.stats;
  detector_stats : unit -> Mmc_sim.Detector.stats option;
      (** failure-detector counters when the broadcast runs one *)
  pulls : unit -> int;
  pushes : unit -> int;
  entries_pushed : unit -> int;
  snapshots_pushed : unit -> int;
  recoveries : unit -> int;  (** wipe-crash restarts completed *)
  stability_acks : unit -> int;
      (** packets on the stability wire (0 in [Optimistic] mode) *)
}

(** [sink] receives the store's {!handle} at creation (the store
    interface itself stays uniform across kinds).  [detector] tunes
    the broadcast's failure detector; [mode] picks the delivery rule
    (default [Stable]). *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Mmc_broadcast.Batch.t ->
  ?detector:Mmc_sim.Detector.config ->
  ?mode:mode ->
  ?policy:Rlog.policy ->
  ?sink:(handle -> unit) ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  abcast_impl:Mmc_broadcast.Abcast.impl ->
  recorder:Recorder.t ->
  Store.t
