(** Causally consistent replicated store (Raynal et al.'s weaker
    condition): updates apply locally at once and flood to other
    replicas, which delay them until causally preceding updates have
    been applied (vector clocks); queries are local.  Executions are
    causally consistent but in general not m-sequentially consistent —
    the comparison point for the paper's protocols.

    Limitation (inherent to causal re-execution, and part of the
    lesson): update procedures are re-executed at every replica, so
    their write sets and written values must be data-independent
    (straight-line blind writes, as produced by
    [Mmc_workload.Generator.mixed]).  Value-dependent updates (DCAS,
    conditional transfers) can diverge across replicas; the recorder
    then rejects the trace. *)

(** [fault] attaches a fault injector: all of the protocol's traffic
    then runs over the reliable ack/retransmit transport and survives
    message loss, partitions and crash/recovery windows. *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  recorder:Recorder.t ->
  Store.t
