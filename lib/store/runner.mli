(** Closed-loop workload runner: sequential clients driving a store to
    quiescence; returns the recorded history, the timestamp table and
    performance measurements. *)

open Mmc_core

type config = {
  n_procs : int;
  n_objects : int;
  ops_per_proc : int;
  think_lo : int;  (** >= 1 keeps process subhistories sequential *)
  think_hi : int;
  latency : Mmc_sim.Latency.t;
  abcast_impl : Mmc_broadcast.Abcast.impl;
  kind : Store.kind;
  aw_delta : int;  (** delay bound assumed by the Aw store *)
  fault : Mmc_sim.Fault.plan;
      (** faults injected below the store's transport;
          {!Mmc_sim.Fault.none} (the default) leaves the channels
          reliable *)
  reliable : Mmc_sim.Reliable.config option;
      (** retry budget of the ack/retransmit layer under faults
          ([None] = {!Mmc_sim.Reliable.default}); threaded to the
          broadcast and catch-up transports of the msc/mlin/rmsc
          stores *)
  recovery : Mmc_recovery.Rlog.policy;
      (** WAL checkpoint/gap-poll policy of the [Rmsc] store *)
  delivery : Rstore.mode;
      (** the [Rmsc] store's delivery rule: quorum-stable (default)
          or optimistic (kept for comparison) *)
  detector : Mmc_sim.Detector.config option;
      (** failure-detector tuning for the [Rmsc] broadcast ([None] =
          {!Mmc_sim.Detector.default_config}) *)
  batch : Mmc_broadcast.Batch.t;
      (** broadcast batching / tree-dissemination knobs
          ({!Mmc_broadcast.Batch.unbatched} by default); changes only
          the wire framing, never the delivered order *)
  fastpath : Mmc_fastpath.Classify.mode;
      (** the [Seg] store's classifier: [Sound] (default), [Off]
          (everything sequenced — the A/B baseline), or the
          deliberately-wrong [Trust_labels] used by the oracle test *)
}

val default_config : config

type result = {
  history : History.t;
  stamps : (Types.mop_id, Version_vector.stamped) Hashtbl.t;
  sync_order : Types.mop_id list;
      (** synchronized updates in atomic-broadcast order (empty for
          stores without a global update order) *)
  duration : Types.time;  (** virtual time at quiescence *)
  messages : int;
  events : int;
  completed : int;
  query_latency : Mmc_sim.Stats.summary;
  update_latency : Mmc_sim.Stats.summary;
  fault : Mmc_sim.Fault.t option;
      (** the run's fault injector — drop/retransmission/recovery
          counters — when a fault plan was configured *)
  recovery : Rstore.handle option;
      (** the [Rmsc] store's recovery introspection (cursors,
          convergence, WAL/catch-up counters) *)
  fastpath : Seg_store.handle option;
      (** the [Seg] store's fast-path introspection (local/escalated/
          flush counters; finalize already called by {!run}) *)
}

(** [ownership] overrides the [Seg] store's object-home map (the
    sharded store homes by {e global} id); [fsink] receives its
    introspection handle — callers driving the engine themselves must
    invoke [finalize] after quiescence, before building the
    history. *)
val make_store :
  ?fault:Mmc_sim.Fault.t ->
  ?sink:(Rstore.handle -> unit) ->
  ?tail:Seg_store.tail_order ->
  ?ownership:Mmc_fastpath.Ownership.t ->
  ?fsink:(Seg_store.handle -> unit) ->
  config ->
  Mmc_sim.Engine.t ->
  rng:Mmc_sim.Rng.t ->
  recorder:Recorder.t ->
  Store.t

(** [check_trace result ~flavour] — Theorem-7 admissibility of the
    recorded trace: the flavour's base relation plus the recorded
    atomic-broadcast order, checked under [kind] (default WW).  The
    transitive closure is maintained incrementally edge by edge
    ({!Mmc_core.Check_constrained.Incremental}), never re-closed from
    scratch.  With [~pool] the same edges go through the batch
    pipeline instead, so the one-shot closure can be row-blocked over
    the pool's domains; the verdict is the same either way (pinned by
    [test_incremental]). *)
val check_trace :
  ?pool:Mmc_parallel.Pool.t ->
  ?arena:Relation.Arena.arena ->
  ?kind:Constraints.kind ->
  result ->
  flavour:History.flavour ->
  Check_constrained.result

(** The same full-trace check from a bare history plus synchronization
    order — for callers that assembled the trace themselves (streamed
    NDJSON files, the soak's full-verification cross-check) rather
    than through {!run}. *)
val check_history :
  ?pool:Mmc_parallel.Pool.t ->
  ?arena:Relation.Arena.arena ->
  ?kind:Constraints.kind ->
  History.t ->
  sync_order:Types.mop_id list ->
  flavour:History.flavour ->
  Check_constrained.result

(** [run ~seed cfg ~workload] — [workload rng ~proc ~step] produces the
    [step]-th m-operation of client [proc]. *)
val run :
  seed:int ->
  config ->
  workload:(Mmc_sim.Rng.t -> proc:int -> step:int -> Prog.mprog) ->
  result
