(** Distributed strict two-phase locking over sharded owner copies —
    the classical database-style alternative the paper's transaction
    connection suggests (and an instance of OO-style synchronization:
    conflicting m-operations are ordered per object by its lock).

    Object [x] lives at node [x mod n], which is also its lock manager.
    An m-operation locks its conservative touch set in ascending object
    order (no deadlock), then executes — reads and writes are RPCs to
    the owner nodes — and finally responds and releases all locks
    (strict 2PL: locks held until completion, so executions are
    strictly serializable, hence m-linearizable).

    Costs, by construction: ~2 message rounds per locked object
    (sequential — ascending order), plus 2 per read and 2 per write,
    plus releases.  Contention shows up as lock-queue waiting, unlike
    the broadcast protocols where it shows up as total-order delay. *)

open Mmc_core
open Mmc_sim

type msg =
  | Lock_req of { obj : Types.obj_id; reqid : int; client : int }
  | Lock_grant of { obj : Types.obj_id; reqid : int }
  | Unlock of { obj : Types.obj_id }
  | Read_req of { obj : Types.obj_id; reqid : int; client : int }
  | Read_resp of { reqid : int; value : Value.t; version : int }
  | Write_req of {
      obj : Types.obj_id;
      value : Value.t;
      reqid : int;
      client : int;
    }
  | Write_ack of { reqid : int; version : int }

type pending = {
  mprog : Prog.mprog;
  inv : Types.time;
  k : Value.t -> unit;
  proc : int;
  mutable to_lock : Types.obj_id list;  (** still to acquire, ascending *)
  mutable cont : [ `Idle | `Read of Value.t -> Prog.t | `Write of Prog.t ];
  mutable prog : Prog.t;
  mutable ops : Op.t list;  (** reversed *)
  mutable reads : (Types.obj_id * int * int) list;  (** reversed *)
  mutable writes : (Types.obj_id * int) list;  (** latest version per obj *)
  mutable written : Types.obj_id list;
}

type manager_obj = {
  mutable value : Value.t;
  mutable version : int;
  mutable locked : bool;
  mutable queue : (int * int) list;  (** (reqid, client), FIFO *)
}

let create ?fault engine ~n ~n_objects ~latency ~rng ~recorder : Store.t =
  let net = Transport.create ?fault engine ~n ~latency ~rng:(Rng.split rng) in
  let owner obj = obj mod n in
  (* Manager-side state, per node, for the objects it owns. *)
  let objects_of : manager_obj array =
    Array.init n_objects (fun _ ->
        { value = Value.initial; version = 0; locked = false; queue = [] })
  in
  let pending : (int, pending) Hashtbl.t = Hashtbl.create 32 in
  let next_reqid = ref 0 in
  (* Drive an m-operation's program forward from the client side,
     issuing RPCs for reads and writes. *)
  let step reqid (p : pending) =
    match p.prog with
    | Prog.Done result ->
      (* Respond, then release all locks (strict 2PL). *)
      Hashtbl.remove pending reqid;
      List.iter
        (fun obj -> Transport.send net ~src:p.proc ~dst:(owner obj) (Unlock { obj }))
        p.mprog.Prog.may_touch;
      Recorder.add recorder
        {
          Recorder.proc = p.proc;
          inv = p.inv;
          resp = Engine.now engine;
          ops = List.rev p.ops;
          reads = List.rev p.reads;
          writes = List.map (fun (o, v) -> (o, v, 0)) p.writes;
          start_ts = Array.make n_objects 0;
          finish_ts = Array.make n_objects 0;
          sync = None;
};
      p.k result
    | Prog.Read (obj, k) ->
      if not (List.mem obj p.mprog.Prog.may_touch) then
        invalid_arg
          (Fmt.str "Lock_store: read of x%d outside declared touch set" obj);
      p.cont <- `Read k;
      Transport.send net ~src:p.proc ~dst:(owner obj)
        (Read_req { obj; reqid; client = p.proc })
    | Prog.Write (obj, value, rest) ->
      if not (List.mem obj p.mprog.Prog.may_write) then
        invalid_arg
          (Fmt.str "Lock_store: write of x%d outside declared write set" obj);
      p.cont <- `Write rest;
      Transport.send net ~src:p.proc ~dst:(owner obj)
        (Write_req { obj; value; reqid; client = p.proc })
  in
  let acquire_next reqid (p : pending) =
    match p.to_lock with
    | obj :: _ ->
      Transport.send net ~src:p.proc ~dst:(owner obj)
        (Lock_req { obj; reqid; client = p.proc })
    | [] -> step reqid p
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src msg ->
        match msg with
        | Lock_req { obj; reqid; client } ->
          let o = objects_of.(obj) in
          if o.locked then o.queue <- o.queue @ [ (reqid, client) ]
          else begin
            o.locked <- true;
            Transport.send net ~src:node ~dst:client (Lock_grant { obj; reqid })
          end
        | Unlock { obj } -> (
          let o = objects_of.(obj) in
          match o.queue with
          | [] -> o.locked <- false
          | (reqid, client) :: rest ->
            o.queue <- rest;
            Transport.send net ~src:node ~dst:client (Lock_grant { obj; reqid }))
        | Read_req { obj; reqid; client } ->
          let o = objects_of.(obj) in
          Transport.send net ~src:node ~dst:client
            (Read_resp { reqid; value = o.value; version = o.version })
        | Write_req { obj; value; reqid; client } ->
          let o = objects_of.(obj) in
          o.value <- value;
          o.version <- o.version + 1;
          Transport.send net ~src:node ~dst:client
            (Write_ack { reqid; version = o.version })
        | Lock_grant { obj; reqid } ->
          let p = Hashtbl.find pending reqid in
          (match p.to_lock with
          | o :: rest when o = obj -> p.to_lock <- rest
          | _ -> assert false);
          acquire_next reqid p
        | Read_resp { reqid; value; version } -> (
          let p = Hashtbl.find pending reqid in
          match p.cont with
          | `Read k ->
            let obj =
              match p.prog with Prog.Read (o, _) -> o | _ -> assert false
            in
            p.cont <- `Idle;
            p.ops <- Op.read obj value :: p.ops;
            if (not (List.mem obj p.written))
               && not (List.exists (fun (o, _, _) -> o = obj) p.reads)
            then p.reads <- (obj, version, 0) :: p.reads;
            p.prog <- k value;
            step reqid p
          | `Idle | `Write _ -> assert false)
        | Write_ack { reqid; version } -> (
          let p = Hashtbl.find pending reqid in
          match p.cont with
          | `Write rest ->
            let obj, value =
              match p.prog with
              | Prog.Write (o, v, _) -> (o, v)
              | _ -> assert false
            in
            p.cont <- `Idle;
            p.ops <- Op.write obj value :: p.ops;
            p.writes <- (obj, version) :: List.remove_assoc obj p.writes;
            if not (List.mem obj p.written) then p.written <- obj :: p.written;
            p.prog <- rest;
            step reqid p
          | `Idle | `Read _ -> assert false))
  done;
  let invoke ~proc (m : Prog.mprog) ~k =
    let reqid = !next_reqid in
    incr next_reqid;
    let p =
      {
        mprog = m;
        inv = Engine.now engine;
        k;
        proc;
        to_lock = m.Prog.may_touch;
        cont = `Idle;
        prog = m.Prog.prog;
        ops = [];
        reads = [];
        writes = [];
        written = [];
      }
    in
    Hashtbl.replace pending reqid p;
    acquire_next reqid p
  in
  {
    Store.name = "lock";
    invoke;
    messages_sent = (fun () -> Transport.messages_sent net);
  }
