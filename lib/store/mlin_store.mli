(** The m-linearizability protocol (paper, Figure 6): updates as in
    the m-SC protocol; a query asks every replica for its copy and
    timestamp, keeps the freshest (replica timestamps are totally
    ordered — prefixes of the broadcast sequence), and reads from it
    once all [n] replies arrived.  No clock synchronization or delay
    bound is assumed. *)

(** [fault] attaches a fault injector: all of the protocol's traffic
    then runs over the reliable ack/retransmit transport and survives
    message loss, partitions and crash/recovery windows.  [batch]
    configures sequencer-side batching and tree dissemination in the
    underlying broadcast ({!Mmc_broadcast.Batch}); it never changes
    the delivered order, only the wire framing. *)
val create :
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Mmc_broadcast.Batch.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  n_objects:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  abcast_impl:Mmc_broadcast.Abcast.impl ->
  recorder:Recorder.t ->
  Store.t
