(** The coordination-avoidance store ([seg]): confluent m-operations
    execute locally with zero messages; sequenced m-operations
    escalate to the atomic broadcast behind a barrier that flushes
    locally-applied operations into the global order first.

    {2 Protocol}

    The object space is partitioned among the replicas by an
    {!Mmc_fastpath.Ownership} map; {!Mmc_fastpath.Classify} marks an
    m-operation {e confluent} when its conservative touch set is homed
    at the issuing replica.  Each replica keeps two copies of the
    objects:

    - the {e prefix} — the state produced by delivered (globally
      ordered) operations only; identical at every replica because it
      is driven exclusively by the total delivery order;
    - the {e live} copy — the prefix plus the replica's own buffered
      fast operations (applied locally, not yet in the global order).

    A {e fast} (confluent) operation executes on the live copy and
    responds immediately: no broadcast, no sequencer round-trip.  Its
    record is buffered; its synchronization position is assigned when
    a later barrier carries it into the delivery order.

    A {e sequenced} operation at origin [p] escalates:

    + [p] sends [Flush_req] to the home replica of every non-owned
      object the operation may write; each such owner replies
      [Flush_ack] with its entire buffer of undelivered fast
      operations and {e seals} — new fast updates queue until the
      matching barrier delivers (otherwise a fast update could read
      state the sequenced operation is about to overwrite while being
      ordered after it);
    + [p] atomically broadcasts a {e barrier}: the flushed entries
      (acked buffers plus [p]'s own buffer) and the operation itself;
    + on delivery, every replica applies the carried entries to its
      prefix in canonical (origin, sequence) order — a per-origin
      watermark makes re-carried entries idempotent — assigning each
      one the next global position, then executes the sequenced
      operation {e on the prefix} (every replica computes the same
      result; the origin records and responds), and finally releases
      any seal keyed by this barrier.

    Owners of objects the sequenced operation merely {e reads} are not
    flushed: the operation reads the prefix, which never contains
    unflushed fast writes, so those buffered operations are simply
    ordered after it.  Escalated queries broadcast (to pin their
    snapshot) but flush nobody.

    A query whose touch set is owned reads the live copy (its own
    writes are visible — process order demands it).  A query touching
    non-owned objects is fast only while the replica's buffer is
    empty — then the live copy {e is} the prefix and the snapshot is
    exactly an [msc] local query; otherwise mixing own-fresh and
    remote-stale values can produce a genuinely non-m-SC read, so it
    escalates as a non-writing sequenced operation.

    Soundness is re-checked, never assumed: the recorded history goes
    through the Theorem-7 oracle like every other store's.  When the
    classifier is untrusted ({!Mmc_fastpath.Classify.trusted}), fast
    writes are recorded under per-replica version namespaces so that
    an unsound classification surfaces as a FAIL verdict rather than a
    recorder crash — the pinned wrong-classifier test depends on
    this. *)

open Mmc_core
open Mmc_sim
open Mmc_broadcast
open Mmc_fastpath

type stats = {
  mutable fast : int;  (** confluent updates applied locally *)
  mutable fast_queries : int;  (** queries answered locally *)
  mutable escalated : int;  (** sequenced operations broadcast *)
  mutable flushes : int;  (** [Flush_req] messages sent *)
  mutable carried : int;  (** flush entries shipped inside barriers *)
  mutable sealed_waits : int;  (** fast updates queued behind a seal *)
}

(** Introspection and end-of-run hook: [finalize] assigns
    synchronization positions to never-flushed tail entries and hands
    their records to the recorder (the runner calls it after
    quiescence, before building the history); [oldest_pending] is the
    earliest invocation time still buffered anywhere — streaming
    consumers must not consider the trace complete past it. *)
type handle = {
  stats : stats;
  oldest_pending : unit -> int option;
  finalize : unit -> unit;
}

(* A buffered fast operation: the record it will contribute (sync
   still unassigned) plus its final writes with values, so other
   replicas can apply it when a barrier carries it over. *)
type entry = {
  e_origin : int;
  e_seq : int;
  e_rec : Recorder.record;
      (** its [resp] is the execution instant — fast operations
          respond immediately — which is also the op's hybrid-clock
          key in the [Frontier] finalize *)
  e_writes : (Types.obj_id * Value.t * int * int) list;
      (** (object, final value, version, namespace) *)
}

type op_payload = {
  p_origin : int;
  p_mprog : Prog.mprog;
  p_inv : Types.time;
  p_query : bool;
  p_k : Value.t -> unit;
}

type barrier = {
  b_origin : int;
  b_id : int;  (** origin-local barrier id; [(b_origin, b_id)] keys seals *)
  b_carried : entry list;  (** sorted by (origin, sequence) *)
  b_op : op_payload;
}

type ctl =
  | Flush_req of { fr_origin : int; fr_id : int }
  | Flush_ack of { fa_src : int; fa_id : int; fa_entries : entry list }

(* Waiting state of an escalation's flush round. *)
type pending = {
  mutable waiting : int list;
  mutable acked : entry list;
  pend_op : op_payload;
}

let final_writes (applied : Apply.applied) =
  let last : (Types.obj_id, Value.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun op ->
      match op with
      | Op.Write (x, v) -> Hashtbl.replace last x v
      | Op.Read _ -> ())
    applied.Apply.ops;
  List.map
    (fun (x, ver, ns) -> (x, Hashtbl.find last x, ver, ns))
    applied.Apply.writes

(* How [finalize] turns buffered/carried fast operations into
   synchronization positions.  [Dense] records carried entries at
   delivery and appends never-flushed tails after every broadcast
   position — sound for a single store (nothing of the same process
   with a position can follow a tail op, and tails of different
   origins are object-disjoint), and keeps positions stable while a
   streaming consumer reads them.  [Frontier] withholds every fast
   record until finalize and re-keys the whole order by a hybrid
   clock (see the finalize branch); the sharded store needs this
   because a process interleaves shards — with any delivery-time
   placement, a shard's chain can order a fast op after a sequenced
   op that {e follows} one of its program-order successors on another
   shard, and the stitched relation (per-shard chains plus process
   order) goes cyclic. *)
type tail_order = Dense | Frontier

let create ?fault ?reliable ?batch ?(mode = Classify.Sound) ?(tail = Dense)
    ?ownership ?fsink engine ~n ~n_objects ~latency ~rng ~abcast_impl ~recorder
    : Store.t =
  let ownership =
    match ownership with
    | Some o -> o
    | None -> Ownership.modulo ~n_owners:n
  in
  let trusted = Classify.trusted mode in
  (* Replica state: prefix (delivered-only; identical everywhere) and
     live (prefix + own buffered fast ops), each with value, version
     and namespace arrays. *)
  let prefix_x = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let prefix_ts = Array.init n (fun _ -> Array.make n_objects 0) in
  let prefix_ns = Array.init n (fun _ -> Array.make n_objects 0) in
  let live_x = Array.init n (fun _ -> Array.make n_objects Value.initial) in
  let live_ts = Array.init n (fun _ -> Array.make n_objects 0) in
  let live_ns = Array.init n (fun _ -> Array.make n_objects 0) in
  let buffer : entry Queue.t array = Array.init n (fun _ -> Queue.create ()) in
  let next_seq = Array.make n 0 in
  (* watermark.(v).(o): next sequence number of origin [o] that replica
     [v] has not yet applied to its prefix — carried entries below it
     are duplicates from overlapping flushes. *)
  let watermark = Array.init n (fun _ -> Array.make n 0) in
  (* Global position counter of the synchronization order; advanced in
     lockstep at every replica by the (identical) delivery sequence. *)
  let next_pos = Array.make n 0 in
  let seals : (int * int) list ref array = Array.init n (fun _ -> ref []) in
  let queued : (Prog.mprog * Types.time * (Value.t -> unit)) Queue.t array =
    Array.init n (fun _ -> Queue.create ())
  in
  let pendings : (int, pending) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in
  let bar_counter = Array.make n 0 in
  (* Hybrid-clock bookkeeping for the [Frontier] finalize: the first
     engine instant at which {e any} replica consumed each global
     position, the positions held by sequenced (broadcast) updates,
     and fast entries already retired into the prefix — their records
     are withheld from the recorder until [finalize] re-keys the whole
     order. *)
  let first_seen : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let seq_positions : int list ref = ref [] in
  let retired : entry list ref = ref [] in
  let note_pos pos =
    if not (Hashtbl.mem first_seen pos) then
      Hashtbl.add first_seen pos (Engine.now engine)
  in
  let stats =
    {
      fast = 0;
      fast_queries = 0;
      escalated = 0;
      flushes = 0;
      carried = 0;
      sealed_waits = 0;
    }
  in
  let ctl : ctl Transport.t =
    Transport.create ?fault ?config:reliable engine ~n ~latency
      ~rng:(Rng.split rng)
  in
  let abcast = ref None in
  let the_abcast () = Option.get !abcast in
  (* The namespace fast writes are recorded under: the shared namespace
     0 when the classifier is trusted (ownership makes version chains
     collision-free), a per-replica one otherwise so unsound
     interleavings surface as Theorem-7 verdicts, not recorder
     crashes. *)
  let fast_ns p = if trusted then 0 else p + 1 in
  let buffer_entries p = List.of_seq (Queue.to_seq buffer.(p)) in
  let broadcast_barrier p id carried op =
    let carried =
      List.sort
        (fun a b -> compare (a.e_origin, a.e_seq) (b.e_origin, b.e_seq))
        carried
    in
    stats.carried <- stats.carried + List.length carried;
    Abcast.broadcast (the_abcast ()) ~src:p
      { b_origin = p; b_id = id; b_carried = carried; b_op = op }
  in
  (* Apply one carried entry to replica [node]'s prefix (and live copy
     at non-origins), assign it the next global position, and at its
     origin retire it from the buffer and hand its record — now
     synchronized — to the recorder.  Version counters merge by [max]:
     under a trusted classifier the carried version always extends the
     chain exactly, and under an untrusted one monotonicity keeps the
     recorder's version map single-writer per namespace. *)
  let apply_entry node e =
    let wm = watermark.(node).(e.e_origin) in
    assert (e.e_seq <= wm);
    if e.e_seq = wm then begin
      watermark.(node).(e.e_origin) <- wm + 1;
      List.iter
        (fun (x, v, ver, ns) ->
          prefix_x.(node).(x) <- v;
          if ver > prefix_ts.(node).(x) then prefix_ts.(node).(x) <- ver;
          prefix_ns.(node).(x) <- ns;
          if node <> e.e_origin then begin
            live_x.(node).(x) <- v;
            if ver > live_ts.(node).(x) then live_ts.(node).(x) <- ver;
            live_ns.(node).(x) <- ns
          end)
        e.e_writes;
      let pos = next_pos.(node) in
      next_pos.(node) <- pos + 1;
      note_pos pos;
      if node = e.e_origin then begin
        (match Queue.peek_opt buffer.(node) with
        | Some head when head.e_seq = e.e_seq -> ignore (Queue.pop buffer.(node))
        | _ -> assert false);
        match tail with
        | Dense -> Recorder.add recorder { e.e_rec with Recorder.sync = Some pos }
        | Frontier ->
          (* The final position comes from the hybrid-clock re-keying
             at [finalize]; until then the record stays out of the
             recorder. *)
          retired := e :: !retired
      end
    end
  in
  let rec deliver ~node ~origin:_ (b : barrier) =
    List.iter (apply_entry node) b.b_carried;
    let op = b.b_op in
    let start_ts = Array.copy prefix_ts.(node) in
    let applied, op_pos =
      if op.p_query then
        ( Apply.query_ns prefix_x.(node) prefix_ts.(node) prefix_ns.(node)
            op.p_mprog.Prog.prog,
          None )
      else begin
        let applied =
          Apply.update_ns prefix_x.(node) prefix_ts.(node) prefix_ns.(node)
            ~writer_ns:0 op.p_mprog.Prog.prog
        in
        (* Copy the new prefix values of written objects into the live
           copy; owners of written objects were flushed and sealed, so
           no buffered fast write is overtaken. *)
        List.iter
          (fun (x, ver, _) ->
            live_x.(node).(x) <- prefix_x.(node).(x);
            if ver > live_ts.(node).(x) then live_ts.(node).(x) <- ver;
            live_ns.(node).(x) <- 0)
          applied.Apply.writes;
        let pos = next_pos.(node) in
        next_pos.(node) <- pos + 1;
        note_pos pos;
        (applied, Some pos)
      end
    in
    if node = op.p_origin then begin
      (match op_pos with
      | Some p -> seq_positions := p :: !seq_positions
      | None -> ());
      Recorder.add recorder
        {
          Recorder.proc = op.p_origin;
          inv = op.p_inv;
          resp = Engine.now engine;
          ops = applied.Apply.ops;
          reads = applied.Apply.reads;
          writes = applied.Apply.writes;
          start_ts;
          finish_ts = Array.copy prefix_ts.(node);
          sync = (if op.p_query then None else op_pos);
        };
      op.p_k applied.Apply.result
    end;
    let key = (b.b_origin, b.b_id) in
    if List.mem key !(seals.(node)) then begin
      seals.(node) := List.filter (fun k -> k <> key) !(seals.(node));
      if !(seals.(node)) = [] then begin
        (* Unsealed: replay deferred invocations in arrival order. *)
        let q = queued.(node) in
        let rec drain () =
          match Queue.take_opt q with
          | None -> ()
          | Some (m, inv, k) ->
            invoke_at ~proc:node ~inv m ~k;
            (* A replayed op can re-seal the replica; the rest of the
               queue then stays for the next release. *)
            if !(seals.(node)) = [] then drain ()
        in
        drain ()
      end
    end
  and escalate ~proc ~inv ~query (m : Prog.mprog) ~k =
    stats.escalated <- stats.escalated + 1;
    let id = bar_counter.(proc) in
    bar_counter.(proc) <- id + 1;
    let op = { p_origin = proc; p_mprog = m; p_inv = inv; p_query = query; p_k = k } in
    (* Flush the owners of every object the update may TOUCH, not just
       write: a sequenced reader of an owned object must see the
       owner's buffered fast writes, or the synchronization order
       would place it after writes it provably did not read. *)
    let remote_owners =
      if query then []
      else
        List.sort_uniq compare
          (List.filter_map
             (fun x ->
               let o = Ownership.owner ownership x in
               if o = proc then None else Some o)
             m.Prog.may_touch)
    in
    if remote_owners = [] then
      broadcast_barrier proc id (buffer_entries proc) op
    else begin
      Hashtbl.replace pendings.(proc) id
        { waiting = remote_owners; acked = []; pend_op = op };
      List.iter
        (fun w ->
          stats.flushes <- stats.flushes + 1;
          Transport.send ctl ~src:proc ~dst:w
            (Flush_req { fr_origin = proc; fr_id = id }))
        remote_owners
    end
  and invoke_at ~proc ~inv (m : Prog.mprog) ~k =
    if Prog.is_query m then begin
      if
        Ownership.owns ownership ~proc m.Prog.may_touch
        || Queue.is_empty buffer.(proc)
      then begin
        (* Owned snapshot, or the live copy is exactly the prefix: an
           msc-style local query either way. *)
        stats.fast_queries <- stats.fast_queries + 1;
        let start_ts = Array.copy live_ts.(proc) in
        let applied =
          Apply.query_ns live_x.(proc) live_ts.(proc) live_ns.(proc)
            m.Prog.prog
        in
        Recorder.add recorder
          {
            Recorder.proc;
            inv;
            resp = Engine.now engine;
            ops = applied.Apply.ops;
            reads = applied.Apply.reads;
            writes = [];
            start_ts;
            finish_ts = Array.copy live_ts.(proc);
            sync = None;
          };
        k applied.Apply.result
      end
      else escalate ~proc ~inv ~query:true m ~k
    end
    else
      match
        Classify.classify mode ownership ~proc ~label:m.Prog.label
          ~may_touch:m.Prog.may_touch
      with
      | Classify.Sequenced -> escalate ~proc ~inv ~query:false m ~k
      | Classify.Confluent ->
        if !(seals.(proc)) <> [] then begin
          (* A flush we acked is in flight: applying now would order
             this op's effects before a barrier that did not carry
             them.  Defer until the seal releases. *)
          stats.sealed_waits <- stats.sealed_waits + 1;
          Queue.add (m, inv, k) queued.(proc)
        end
        else begin
          stats.fast <- stats.fast + 1;
          let start_ts = Array.copy live_ts.(proc) in
          let applied =
            Apply.update_ns live_x.(proc) live_ts.(proc) live_ns.(proc)
              ~writer_ns:(fast_ns proc) m.Prog.prog
          in
          let now = Engine.now engine in
          let rec_ =
            {
              Recorder.proc;
              inv;
              resp = now;
              ops = applied.Apply.ops;
              reads = applied.Apply.reads;
              writes = applied.Apply.writes;
              start_ts;
              finish_ts = Array.copy live_ts.(proc);
              sync = None;  (* assigned when a barrier carries it *)
            }
          in
          let seq = next_seq.(proc) in
          next_seq.(proc) <- seq + 1;
          Queue.add
            {
              e_origin = proc;
              e_seq = seq;
              e_rec = rec_;
              e_writes = final_writes applied;
            }
            buffer.(proc);
          k applied.Apply.result
        end
  in
  for v = 0 to n - 1 do
    Transport.set_handler ctl v (fun _src msg ->
        match msg with
        | Flush_req { fr_origin; fr_id } ->
          (* Seal even when the buffer is empty: fast updates applied
             between this ack and the barrier's delivery would read
             pre-barrier state yet be ordered after it. *)
          seals.(v) := (fr_origin, fr_id) :: !(seals.(v));
          Transport.send ctl ~src:v ~dst:fr_origin
            (Flush_ack { fa_src = v; fa_id = fr_id; fa_entries = buffer_entries v })
        | Flush_ack { fa_src; fa_id; fa_entries } -> (
          match Hashtbl.find_opt pendings.(v) fa_id with
          | None -> ()
          | Some p ->
            p.waiting <- List.filter (fun w -> w <> fa_src) p.waiting;
            p.acked <- p.acked @ fa_entries;
            if p.waiting = [] then begin
              Hashtbl.remove pendings.(v) fa_id;
              broadcast_barrier v fa_id (buffer_entries v @ p.acked) p.pend_op
            end))
  done;
  abcast :=
    Some
      ((Select.factory abcast_impl) ?fault ?reliable ?batch engine ~n ~latency
         ~rng:(Rng.split rng) ~deliver);
  let invoke ~proc (m : Prog.mprog) ~k =
    invoke_at ~proc ~inv:(Engine.now engine) m ~k
  in
  let oldest_pending () =
    let best = ref None in
    Array.iter
      (fun q ->
        Queue.iter
          (fun e ->
            match !best with
            | Some b when b <= e.e_rec.Recorder.inv -> ()
            | _ -> best := Some e.e_rec.Recorder.inv)
          q)
      buffer;
    !best
  in
  let finalized = ref false in
  let finalize () =
    if not !finalized then begin
      finalized := true;
      (* Tail entries never flushed by quiescence get synchronization
         positions now.  They were never observed remotely and (in
         trusted mode) are object-disjoint across origins, and every
         broadcast op conflicting with one precedes its frontier — the
         flush protocol guarantees it: a conflicting barrier either
         carried the entry (then it is not a tail) or was applied at
         the origin before the entry executed. *)
      match tail with
      | Dense ->
        (* Append after every broadcast position, origins in index
           order.  Sound stand-alone; see [tail_order]. *)
        let pos = ref (Array.fold_left max 0 next_pos) in
        for p = 0 to n - 1 do
          Queue.iter
            (fun e ->
              Recorder.add recorder { e.e_rec with Recorder.sync = Some !pos };
              incr pos)
            buffer.(p)
        done
      | Frontier ->
        (* Re-key the whole synchronization order by a hybrid clock:
           a sequenced update orders at the running maximum of
           first-delivery instants up to its position, a fast
           operation at its execution instant (its [resp]).  In-order
           delivery bounds every earlier first-delivery by any later
           op's origin-delivery instant, so the sequenced clock is
           monotone in position yet never ahead of real time at any
           replica that read the op; the flush/seal protocol in turn
           bounds fast operations against every conflicting barrier.
           Every edge of process order, reads-from and write-version
           order then strictly advances the clock (sequenced before
           fast on ties), so per-shard chains re-keyed this way
           compose acyclically across shards — which no fixed slotting
           of fast ops into delivery positions achieves: a sequenced
           op can be stamped before a fast op executes yet reach the
           fast op's origin only after. *)
        let n_real = Array.fold_left max 0 next_pos in
        let s = Array.make (max n_real 1) 0 in
        let rm = ref 0 in
        for p = 0 to n_real - 1 do
          (match Hashtbl.find_opt first_seen p with
          | Some t -> if t > !rm then rm := t
          | None -> ());
          s.(p) <- !rm
        done;
        let fast = ref !retired in
        for p = 0 to n - 1 do
          Queue.iter (fun e -> fast := e :: !fast) buffer.(p)
        done;
        let keyed =
          List.map (fun p -> ((s.(p), 0, p, 0), `Seq p)) !seq_positions
          @ List.map
              (fun e ->
                ((e.e_rec.Recorder.resp, 1, e.e_origin, e.e_seq), `Fast e))
              !fast
        in
        let keyed = List.sort (fun (a, _) (b, _) -> compare a b) keyed in
        let remap = Array.make (max n_real 1) 0 in
        List.iteri
          (fun i (_, slot) ->
            match slot with `Seq p -> remap.(p) <- i | `Fast _ -> ())
          keyed;
        (* Remap the recorded broadcast positions first (the key order
           preserves their relative order, so the map is monotone),
           then add the fast records with their final positions. *)
        Recorder.remap_sync recorder (fun p -> remap.(p));
        List.iteri
          (fun i (_, slot) ->
            match slot with
            | `Seq _ -> ()
            | `Fast e ->
              Recorder.add recorder { e.e_rec with Recorder.sync = Some i })
          keyed
    end
  in
  (match fsink with
  | Some f -> f { stats; oldest_pending; finalize }
  | None -> ());
  {
    Store.name = "seg";
    invoke;
    messages_sent =
      (fun () ->
        Abcast.messages_sent (the_abcast ()) + Transport.messages_sent ctl);
  }
