(** Execution recorder: turns protocol runs into checkable histories.

    Each completed m-operation is recorded with its operation list,
    invocation/response times, the {e versions} it read and wrote, and
    its start/finish timestamps (the protocol's version vectors).
    Versions identify writers exactly — (namespace, object, version) is
    written by at most one m-operation — so the reads-from relation of
    the produced history is the true one, not a value-based guess.

    The namespace disambiguates version counters that are not globally
    agreed: the replicated protocols use a single namespace (atomic
    broadcast makes versions global), while the unsynchronized baseline
    uses one namespace per replica. *)

open Mmc_core

type record = {
  proc : Types.proc_id;
  inv : Types.time;
  resp : Types.time;
  ops : Op.t list;
  reads : (Types.obj_id * int * int) list;
      (** external reads: (object, version, namespace) *)
  writes : (Types.obj_id * int * int) list;
      (** final writes: (object, new version, namespace) *)
  start_ts : Version_vector.t;
  finish_ts : Version_vector.t;
  sync : int option;
      (** position in the synchronization (atomic broadcast) total
          order, when the protocol has one — None for queries and for
          stores without a global update order *)
}

type t = {
  n_objects : int;
  mutable records : record list;  (** reversed *)
  mutable count : int;
}

let create ~n_objects = { n_objects; records = []; count = 0 }

let add t r =
  t.records <- r :: t.records;
  t.count <- t.count + 1

let count t = t.count

let records t = List.rev t.records

(* Hand the accumulated records over (in add order) and forget them:
   a streaming consumer (the soak driver, `mmc generate --stream`)
   drains periodically so resident record state stays bounded by the
   drain interval, not the run length.  [count] keeps the cumulative
   total; a drained recorder can no longer build the full history. *)
let drain t =
  let rs = List.rev t.records in
  t.records <- [];
  rs

let of_records ~n_objects records =
  { n_objects; records = List.rev records; count = List.length records }

(* Rewrite every synchronization position through [f] — the seg
   store's finalize re-numbers the broadcast order to slot in tail
   entries at their frontiers.  [f] must be strictly monotone so the
   recorded order is preserved. *)
let remap_sync t f =
  t.records <-
    List.map
      (fun r ->
        match r.sync with
        | None -> r
        | Some p -> { r with sync = Some (f p) })
      t.records

exception Inconsistent_versions of string

(** Build the history, the per-m-operation timestamp table for the
    P 5.x validators, and the synchronization order (m-operation ids of
    synchronized updates, in broadcast order) when the protocol
    recorded one.  M-operations are numbered in invocation order; reads
    of version 0 resolve to the initializer. *)
let to_history_full t =
  let records =
    List.stable_sort
      (fun a b -> compare (a.inv, a.resp) (b.inv, b.resp))
      (List.rev t.records)
  in
  let n = List.length records in
  let mops =
    List.mapi
      (fun i r -> Mop.make ~id:(i + 1) ~proc:r.proc ~ops:r.ops ~inv:r.inv ~resp:r.resp)
      records
  in
  let writer_of : (int * Types.obj_id * int, Types.mop_id) Hashtbl.t =
    Hashtbl.create (4 * n)
  in
  List.iteri
    (fun i r ->
      List.iter
        (fun (x, ver, ns) ->
          let key = (ns, x, ver) in
          if Hashtbl.mem writer_of key then
            raise
              (Inconsistent_versions
                 (Fmt.str "two writers of version %d of x%d (ns %d)" ver x ns));
          Hashtbl.add writer_of key (i + 1))
        r.writes)
    records;
  let rf =
    List.concat
      (List.mapi
         (fun i r ->
           List.map
             (fun (x, ver, ns) ->
               let writer =
                 if ver = 0 then Types.init_mop
                 else
                   match Hashtbl.find_opt writer_of (ns, x, ver) with
                   | Some w -> w
                   | None ->
                     raise
                       (Inconsistent_versions
                          (Fmt.str
                             "m-operation %d read version %d of x%d (ns %d) \
                              with no recorded writer"
                             (i + 1) ver x ns))
               in
               { History.reader = i + 1; obj = x; writer })
             r.reads)
         records)
  in
  let history = History.create ~n_objects:t.n_objects mops ~rf in
  let stamps : (Types.mop_id, Version_vector.stamped) Hashtbl.t =
    Hashtbl.create n
  in
  List.iteri
    (fun i r ->
      Hashtbl.replace stamps (i + 1)
        { Version_vector.start_ts = r.start_ts; finish_ts = r.finish_ts })
    records;
  let sync_order =
    List.mapi (fun i r -> (i + 1, r.sync)) records
    |> List.filter_map (fun (id, s) -> Option.map (fun s -> (s, id)) s)
    |> List.sort compare
    |> List.map snd
  in
  (history, stamps, sync_order)

let to_history t =
  let history, stamps, _ = to_history_full t in
  (history, stamps)
