(** Streaming verification experiment (M1): arrival rate x window.

    Runs the open-loop soak harness ({!Mmc_stream.Soak}) over the msc
    store, sweeping the mean inter-arrival time (smaller = heavier
    offered load) against the windowed checker's epoch window, and
    reports the two claims the subsystem makes:

    - {e flat memory}: max resident relation words must be a function
      of the window, not of the trace length — the resident-words
      column must not grow with ops, and recycled words (the closure
      storage the arena handed back) must dwarf it;
    - {e open-loop latency}: p50/p99/p999 include queueing delay, so
      overload shows up as latency and queue growth while throughput
      saturates — the checker's verdict must stay PASS throughout
      (verification never throttles the store). *)

open Mmc_store
open Mmc_stream

let spec =
  {
    Mmc_workload.Spec.default with
    n_objects = 16;
    read_ratio = 0.5;
    skew = 0.8;
  }

let run_soak ~seed ~procs ~ops ~rate ~window () =
  let cfg =
    {
      Soak.default_config with
      runner =
        {
          Runner.default_config with
          kind = Store.Msc;
          n_procs = procs;
          n_objects = spec.Mmc_workload.Spec.n_objects;
        };
      rate;
      max_ops = ops;
      window;
    }
  in
  Soak.run ~seed ~workload:(Mmc_workload.Generator.mixed spec) cfg

let verdict_word = function
  | Window_check.Pass -> "PASS"
  | Window_check.Fail _ -> "FAIL"
  | Window_check.Inconclusive _ -> "inconcl"

(** M1 — arrival rate x checker window over the msc store. *)
let m1 ?(rates = [ 12; 6; 2 ]) ?(windows = [ 128; 512; 2048 ]) ?(procs = 8)
    ?(ops = 50_000) ?(seed = 11) () =
  let rows =
    List.concat_map
      (fun rate ->
        List.map
          (fun window ->
            let r = run_soak ~seed ~procs ~ops ~rate ~window () in
            let thr =
              1000.0 *. float_of_int r.Soak.completed
              /. float_of_int (max 1 r.Soak.duration)
            in
            let q = r.Soak.latency in
            let m = r.Soak.wc in
            [
              Table.i rate;
              Table.i window;
              Table.i r.Soak.completed;
              Table.f1 thr;
              Table.f1 q.Mmc_sim.Stats.q50;
              Table.f1 q.Mmc_sim.Stats.q99;
              Table.f1 q.Mmc_sim.Stats.q999;
              Table.i r.Soak.max_queue;
              Table.i m.Window_check.max_live;
              Table.i m.Window_check.retired;
              Table.i m.Window_check.max_resident_words;
              Table.i (m.Window_check.recycled_words / 1000);
              verdict_word r.Soak.verdict;
            ])
          windows)
      rates
  in
  {
    Table.id = "M1";
    title = "streaming verification: mean inter-arrival x window (msc)";
    header =
      [
        "iat";
        "window";
        "ops";
        "thr/kt";
        "p50";
        "p99";
        "p999";
        "maxq";
        "live";
        "retired";
        "res w";
        "recyc kw";
        "verdict";
      ];
    rows;
    notes =
      [
        "res w (max resident relation words) must track the window column, \
         not the ops column — that is the flat-memory claim; recycled kw \
         is the closure storage the arena handed back across epochs";
        "latency is arrival-to-response (open loop): as the inter-arrival \
         time shrinks toward service capacity, queueing appears — maxq and \
         the tail (p999) grow while p50 stays near service latency — and \
         the verdict must stay PASS regardless";
        "retired < ops by at most the last window: only the final epoch's \
         live entries are never retired";
      ];
  }
