(** Fault-tolerance experiments (R1, R2): the Section 5 protocols over
    lossy transports.

    The protocols assume reliable reordering channels; here the wire
    below them drops messages, spikes, partitions and crashes, and the
    {!Mmc_sim.Reliable} ack/retransmit layer rebuilds the assumption.
    Every surviving history is re-verified with the Theorem-7
    polynomial checker (the trace carries its atomic-broadcast order,
    so admissibility is decidable in polynomial time) — the checker
    doubles as a fault-tolerance oracle: if reliability were rebuilt
    incorrectly, delivered orders would diverge and admissibility would
    fail. *)

open Mmc_core
open Mmc_store
open Mmc_sim

let spec = { Mmc_workload.Spec.default with n_objects = 8 }

let run_faulty ?(procs = 4) ?(ops = 12) ~seed ~kind ~plan () =
  let cfg =
    {
      Runner.default_config with
      n_procs = procs;
      n_objects = spec.Mmc_workload.Spec.n_objects;
      ops_per_proc = ops;
      kind;
      fault = plan;
    }
  in
  Runner.run ~seed cfg ~workload:(Mmc_workload.Generator.mixed spec)

(** Theorem-7 admissibility of a protocol trace: base relation of the
    store's condition plus the recorded atomic-broadcast order, checked
    under the WW constraint (the broadcast totally orders updates);
    the closure is maintained incrementally ({!Runner.check_trace}). *)
let admissible (res : Runner.result) flavour =
  match Runner.check_trace res ~flavour with
  | Check_constrained.Admissible _ -> true
  | _ -> false

let flavour_of = function
  | Store.Msc -> History.Msc
  | _ -> History.Mlin

(** One (store, plan) cell aggregated over seeds. *)
type cell = {
  ok : int;  (** admissible traces *)
  of_ : int;
  retrans : int;
  dropped : int;
  dups : int;
  abandoned : int;
  u_p50 : int;  (** worst update latency percentiles over the seeds *)
  u_p95 : int;
  u_p99 : int;
  dd_p95 : int;  (** worst first-delivery delay p95 *)
  recovery : int;  (** worst post-heal catch-up time *)
}

let measure ?procs ?ops ~seeds ~kind ~plan () =
  let acc =
    ref
      {
        ok = 0;
        of_ = seeds;
        retrans = 0;
        dropped = 0;
        dups = 0;
        abandoned = 0;
        u_p50 = 0;
        u_p95 = 0;
        u_p99 = 0;
        dd_p95 = 0;
        recovery = 0;
      }
  in
  for seed = 0 to seeds - 1 do
    let res = run_faulty ?procs ?ops ~seed ~kind ~plan () in
    let a = !acc in
    let a =
      if admissible res (flavour_of kind) then { a with ok = a.ok + 1 } else a
    in
    let a =
      {
        a with
        u_p50 = max a.u_p50 res.Runner.update_latency.Stats.p50;
        u_p95 = max a.u_p95 res.Runner.update_latency.Stats.p95;
        u_p99 = max a.u_p99 res.Runner.update_latency.Stats.p99;
      }
    in
    acc :=
      (match res.Runner.fault with
      | None -> a
      | Some f ->
        let c = Fault.counts f in
        {
          a with
          retrans = a.retrans + c.Fault.retransmissions;
          dropped = a.dropped + Fault.dropped f;
          dups = a.dups + c.Fault.duplicates;
          abandoned = a.abandoned + c.Fault.abandoned;
          dd_p95 = max a.dd_p95 (Fault.delivery_delay f).Stats.p95;
          recovery = max a.recovery (Fault.recovery_time f);
        })
  done;
  !acc

let adm c = Fmt.str "%d/%d" c.ok c.of_

(** R1 — drop-rate sweep under a fixed partition window: loss up to 30%
    plus a 250-unit partition isolating node 0 (the sequencer — the
    harshest cut).  Both broadcast protocols must stay admissible;
    retransmissions and delivery-delay inflation are the price. *)
let f1 ?(drops = [ 0.0; 0.1; 0.2; 0.3 ]) ?(seeds = 3) ?(procs = 4) ?(ops = 12)
    () =
  let plan_of drop =
    {
      Fault.none with
      Fault.drop;
      spike_prob = 0.05;
      spike_delay = 40;
      partitions = [ { Fault.from_ = 150; until = 400; island = [ 0 ] } ];
    }
  in
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun drop ->
            let c = measure ~procs ~ops ~seeds ~kind ~plan:(plan_of drop) () in
            [
              Fmt.str "%a" Store.pp_kind kind;
              Table.f2 drop;
              adm c;
              Table.i c.retrans;
              Table.i c.dropped;
              Table.i c.dups;
              Table.i c.abandoned;
              Table.i c.u_p50;
              Table.i c.u_p95;
              Table.i c.u_p99;
              Table.i c.dd_p95;
              Table.i c.recovery;
            ])
          drops)
      [ Store.Msc; Store.Mlin ]
  in
  {
    Table.id = "R1";
    title = "fault sweep: drop rate x 250-unit sequencer partition";
    header =
      [
        "store";
        "drop";
        "admissible";
        "retrans";
        "dropped";
        "dups";
        "given up";
        "u p50";
        "u p95";
        "u p99";
        "dlv p95";
        "recovery";
      ];
    rows;
    notes =
      [
        "admissible must be full even at drop 0.3: reliability is rebuilt \
         below the protocols (Theorem-7 checker as oracle)";
        "retransmissions and delivery-delay p95 grow with the drop rate; \
         'given up' must stay 0 (the retry budget outlasts the faults)";
        "recovery: time the ack/retransmit layer needed to drain the \
         backlog once the partition healed";
      ];
  }

(** R2 — outage-length sweep at fixed 10% loss: a partition isolating
    node 0 and a crash of the last node, both [len] units long.
    Recovery time tracks the outage length; admissibility never
    budges. *)
let f2 ?(lengths = [ 0; 100; 250; 500 ]) ?(seeds = 3) ?(procs = 4) ?(ops = 12)
    () =
  let plan_of len =
    if len = 0 then { Fault.none with Fault.drop = 0.1 }
    else
      {
        Fault.none with
        Fault.drop = 0.1;
        partitions = [ { Fault.from_ = 100; until = 100 + len; island = [ 0 ] } ];
        crashes = [ { Fault.node = procs - 1; at = 60; back = 60 + len; wipe = false } ];
      }
  in
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun len ->
            let c = measure ~procs ~ops ~seeds ~kind ~plan:(plan_of len) () in
            [
              Fmt.str "%a" Store.pp_kind kind;
              Table.i len;
              adm c;
              Table.i c.retrans;
              Table.i c.dropped;
              Table.i c.u_p50;
              Table.i c.u_p95;
              Table.i c.u_p99;
              Table.i c.dd_p95;
              Table.i c.recovery;
            ])
          lengths)
      [ Store.Msc; Store.Mlin ]
  in
  {
    Table.id = "R2";
    title = "outage-length sweep at 10% loss: partition + crash windows";
    header =
      [
        "store";
        "outage";
        "admissible";
        "retrans";
        "dropped";
        "u p50";
        "u p95";
        "u p99";
        "dlv p95";
        "recovery";
      ];
    rows;
    notes =
      [
        "outage = length of both the node-0 partition and the last node's \
         crash window; messages queued during the outage arrive by \
         retransmission after it";
        "delivery-delay p95 and recovery scale with the outage; \
         admissibility is unaffected";
      ];
  }
