(** Crash-recovery experiment (R3): the recoverable store ([rmsc])
    under wipe-crash schedules x checkpoint intervals.

    Wipe crashes erase a replica's volatile state; the restart path is
    checkpoint load + WAL replay + anti-entropy catch-up, and — under
    the sequencer broadcast — epoch-fenced failover whenever the
    sequencer itself is wiped.  Every run must end with all replicas
    converged to identical state and with the history stitched across
    crash epochs Theorem-7 admissible for m-sequential consistency;
    the sweep shows how the checkpoint interval trades WAL replay
    length against checkpoint frequency, and what each crash schedule
    costs in catch-up traffic and failover machinery. *)

open Mmc_core
open Mmc_store
open Mmc_sim
open Mmc_recovery

let spec = { Mmc_workload.Spec.default with n_objects = 8 }

let run_recovery ?(procs = 4) ?(ops = 12) ~seed ~impl ~policy ~plan () =
  let cfg =
    {
      Runner.default_config with
      n_procs = procs;
      n_objects = spec.Mmc_workload.Spec.n_objects;
      ops_per_proc = ops;
      kind = Store.Rmsc;
      abcast_impl = impl;
      fault = plan;
      recovery = policy;
    }
  in
  Runner.run ~seed cfg ~workload:(Mmc_workload.Generator.mixed spec)

let admissible (res : Runner.result) =
  match Runner.check_trace res ~flavour:History.Msc with
  | Check_constrained.Admissible _ -> true
  | _ -> false

(** One (impl, schedule, interval) cell aggregated over seeds. *)
type cell = {
  ok : int;  (** admissible stitched histories *)
  conv : int;  (** runs where every replica converged *)
  of_ : int;
  recoveries : int;
  replayed : int;  (** WAL entries replayed across restarts *)
  checkpoints : int;
  pulls : int;  (** anti-entropy pull rounds *)
  pushed : int;  (** catch-up entries + snapshots shipped *)
  epochs : int;  (** sequencer view changes (0 under lamport) *)
  holes : int;
  resubmits : int;
}

let zero ~seeds =
  {
    ok = 0;
    conv = 0;
    of_ = seeds;
    recoveries = 0;
    replayed = 0;
    checkpoints = 0;
    pulls = 0;
    pushed = 0;
    epochs = 0;
    holes = 0;
    resubmits = 0;
  }

let measure ?procs ?ops ~seeds ~impl ~policy ~plan () =
  let acc = ref (zero ~seeds) in
  for seed = 0 to seeds - 1 do
    let res = run_recovery ?procs ?ops ~seed ~impl ~policy ~plan () in
    let a = !acc in
    let a = if admissible res then { a with ok = a.ok + 1 } else a in
    acc :=
      (match res.Runner.recovery with
      | None -> a
      | Some h ->
        let logs = h.Rstore.log_stats () in
        let sum f = Array.fold_left (fun t s -> t + f s) 0 logs in
        let b = h.Rstore.broadcast_stats () in
        {
          a with
          conv = (a.conv + if h.Rstore.converged () then 1 else 0);
          recoveries = a.recoveries + h.Rstore.recoveries ();
          replayed = a.replayed + sum (fun s -> s.Rlog.replayed);
          checkpoints = a.checkpoints + sum (fun s -> s.Rlog.checkpoints);
          pulls = a.pulls + h.Rstore.pulls ();
          pushed =
            a.pushed + h.Rstore.entries_pushed ()
            + h.Rstore.snapshots_pushed ();
          epochs = a.epochs + b.Mmc_broadcast.Rbcast.epochs;
          holes = a.holes + b.Mmc_broadcast.Rbcast.holes;
          resubmits = a.resubmits + b.Mmc_broadcast.Rbcast.resubmits;
        })
  done;
  !acc

let frac a b = Fmt.str "%d/%d" a b

(** The crash schedules swept: none (loss only), a wipe of the initial
    sequencer, and the sequencer plus a follower later in the run. *)
let schedules =
  let wipe node at back = { Fault.node; at; back; wipe = true } in
  [
    ("none", { Fault.none with Fault.drop = 0.1 });
    ( "seq",
      { Fault.none with Fault.drop = 0.1; crashes = [ wipe 0 150 600 ] } );
    ( "seq+flw",
      {
        Fault.none with
        Fault.drop = 0.1;
        crashes = [ wipe 0 150 600; wipe 2 900 1300 ];
      } );
  ]

(** R3 — crash schedule x checkpoint interval, both broadcasts. *)
let r3 ?(intervals = [ 4; 16; 64 ]) ?(seeds = 3) ?(procs = 4) ?(ops = 12)
    ?(schedule_names = [ "none"; "seq"; "seq+flw" ]) () =
  let schedules =
    List.filter (fun (n, _) -> List.mem n schedule_names) schedules
  in
  let rows =
    List.concat_map
      (fun impl ->
        List.concat_map
          (fun (sname, plan) ->
            List.map
              (fun checkpoint_every ->
                let policy = { Rlog.default_policy with checkpoint_every } in
                let c =
                  measure ~procs ~ops ~seeds ~impl ~policy ~plan ()
                in
                [
                  Fmt.str "%a" Mmc_broadcast.Abcast.pp_impl impl;
                  sname;
                  Table.i checkpoint_every;
                  frac c.ok c.of_;
                  frac c.conv c.of_;
                  Table.i c.recoveries;
                  Table.i c.replayed;
                  Table.i c.checkpoints;
                  Table.i c.pulls;
                  Table.i c.pushed;
                  Table.i c.epochs;
                  Table.i c.holes;
                  Table.i c.resubmits;
                ])
              intervals)
          schedules)
      [ Mmc_broadcast.Abcast.Sequencer_impl; Mmc_broadcast.Abcast.Lamport_impl ]
  in
  {
    Table.id = "R3";
    title = "crash recovery: wipe schedule x checkpoint interval";
    header =
      [
        "abcast";
        "crashes";
        "ckpt";
        "admissible";
        "converged";
        "recov";
        "replayed";
        "ckpts";
        "pulls";
        "pushed";
        "epochs";
        "holes";
        "resub";
      ];
    rows;
    notes =
      [
        "admissible and converged must be full in every row: wipe crashes \
         are masked by checkpoint + WAL replay + catch-up (and epoch \
         failover under the sequencer)";
        "smaller checkpoint intervals -> more checkpoints, fewer WAL \
         entries replayed at restart; the product is the durability bill";
        "epochs/holes/resub are sequencer-only: the lamport broadcast has \
         no distinguished node to fail over";
      ];
  }

(** One (fault mix, interval) cell of R5 aggregated over seeds. *)
type scell = {
  s_ok : int;
  s_conv : int;
  s_of : int;
  torn : int;  (** sectors truncated off torn tails *)
  corrupt : int;  (** damaged records detected by CRC *)
  repaired : int;  (** records refilled in place or from peers *)
  truncated : int;  (** WAL records retired behind checkpoints *)
  transferred : int;  (** catch-up entries + snapshots shipped *)
  scrubbed : int;  (** record verifications by the scrub daemon *)
  fallbacks : int;  (** damaged checkpoints skipped at load *)
}

(** The storage-fault mixes swept: every plan wipes the initial
    sequencer (a tear needs a crash to tear), then layers torn
    writes, bit-rot and stale-checkpoint loss on top. *)
let storage_mixes =
  let base =
    {
      Fault.none with
      Fault.drop = 0.1;
      crashes = [ { Fault.node = 0; at = 150; back = 600; wipe = true } ];
    }
  in
  let tears = [ { Fault.node = 0; at = 150 } ] in
  let rots = [ { Fault.node = 1; at = 300 }; { Fault.node = 3; at = 500 } ] in
  (* the stale checkpoint strikes the wiped node while it is down, so
     its restart must actually take the fallback path *)
  let stales = [ { Fault.node = 0; at = 400 } ] in
  [
    ("none", base);
    ("tear", { base with Fault.tears });
    ("rot", { base with Fault.rots });
    ("tear+rot+stale", { base with Fault.tears; rots; stales });
  ]

(** R5 — storage-fault mix x checkpoint interval.  Convergence and
    admissibility must survive every mix: CRC framing detects the
    damage, the torn tail is refetched via catch-up, quarantined and
    rotted records are repaired from peers (scrub), and a corrupted
    checkpoint falls back to the previous slot.  The counters show
    where each fault's bill lands. *)
let r5 ?(intervals = [ 4; 16 ]) ?(seeds = 3) ?(procs = 4) ?(ops = 12)
    ?(mix_names = [ "none"; "tear"; "rot"; "tear+rot+stale" ]) () =
  let mixes = List.filter (fun (n, _) -> List.mem n mix_names) storage_mixes in
  let rows =
    List.concat_map
      (fun (mname, plan) ->
        List.map
          (fun checkpoint_every ->
            (* retain tightened so segment retirement actually fires at
               this trace length (the truncated/reclaimed columns) *)
            let policy =
              { Rlog.default_policy with checkpoint_every; retain = 16 }
            in
            let acc =
              ref
                {
                  s_ok = 0;
                  s_conv = 0;
                  s_of = seeds;
                  torn = 0;
                  corrupt = 0;
                  repaired = 0;
                  truncated = 0;
                  transferred = 0;
                  scrubbed = 0;
                  fallbacks = 0;
                }
            in
            for seed = 0 to seeds - 1 do
              let res = run_recovery ~procs ~ops ~seed ~policy ~plan
                  ~impl:Mmc_broadcast.Abcast.Sequencer_impl ()
              in
              let a = !acc in
              let a =
                if admissible res then { a with s_ok = a.s_ok + 1 } else a
              in
              acc :=
                (match res.Runner.recovery with
                | None -> a
                | Some h ->
                  let logs = h.Rstore.log_stats () in
                  let sum f = Array.fold_left (fun t s -> t + f s) 0 logs in
                  {
                    a with
                    s_conv = (a.s_conv + if h.Rstore.converged () then 1 else 0);
                    torn = a.torn + sum (fun s -> s.Rlog.torn);
                    corrupt = a.corrupt + sum (fun s -> s.Rlog.corrupt);
                    repaired = a.repaired + sum (fun s -> s.Rlog.repaired);
                    truncated = a.truncated + sum (fun s -> s.Rlog.truncated);
                    transferred =
                      a.transferred + h.Rstore.entries_pushed ()
                      + h.Rstore.snapshots_pushed ();
                    scrubbed = a.scrubbed + sum (fun s -> s.Rlog.scrubbed);
                    fallbacks =
                      a.fallbacks + sum (fun s -> s.Rlog.ckpt_fallbacks);
                  })
            done;
            let c = !acc in
            [
              mname;
              Table.i checkpoint_every;
              frac c.s_ok c.s_of;
              frac c.s_conv c.s_of;
              Table.i c.torn;
              Table.i c.corrupt;
              Table.i c.repaired;
              Table.i c.truncated;
              Table.i c.transferred;
              Table.i c.scrubbed;
              Table.i c.fallbacks;
            ])
          intervals)
      mixes
  in
  {
    Table.id = "R5";
    title = "storage faults: fault mix x checkpoint interval";
    header =
      [
        "faults";
        "ckpt";
        "admissible";
        "converged";
        "torn";
        "corrupt";
        "repaired";
        "truncated";
        "xfer";
        "scrubbed";
        "ckpt-fb";
      ];
    rows;
    notes =
      [
        "admissible and converged must be full in every row: CRC framing \
         detects every injected fault and the scrub/catch-up/peer-repair \
         machinery masks it (with crc off the same plans diverge)";
        "tears surface as torn sectors truncated off the tail and refetched \
         via catch-up; rot as corrupt records repaired from peers; a stale \
         checkpoint as a fallback to the previous slot plus a longer replay";
        "tighter checkpoints truncate the WAL sooner (fewer records left to \
         rot) but give bit-rot a bigger target in snapshots";
      ];
  }

(** One (suspect_after, drop) cell of R4 aggregated over seeds. *)
type dcell = {
  d_ok : int;
  d_conv : int;
  d_of : int;
  suspicions : int;
  false_susp : int;
  refuted : int;
  d_epochs : int;
  d_resubmits : int;
  stab_acks : int;
  d_duration : int;
}

(** R4 — suspicion timeout x loss rate under the in-band failure
    detector.  The plan wipes the initial sequencer mid-run, so every
    cell exercises suspicion-triggered failover; the loss rate stresses
    the heartbeat channel and (at aggressive timeouts) provokes false
    suspicions, whose cost shows up as extra epochs and resubmits —
    never as divergence or inadmissibility. *)
let r4 ?(timeouts = [ 60; 100; 200 ]) ?(drops = [ 0.0; 0.1; 0.2 ])
    ?(seeds = 3) ?(procs = 4) ?(ops = 12) () =
  let rows =
    List.concat_map
      (fun suspect_after ->
        List.map
          (fun drop ->
            let plan =
              {
                Fault.none with
                Fault.drop;
                crashes = [ { Fault.node = 0; at = 150; back = 600; wipe = true } ];
              }
            in
            let detector =
              Some { Detector.default_config with suspect_after }
            in
            let acc =
              ref
                {
                  d_ok = 0;
                  d_conv = 0;
                  d_of = seeds;
                  suspicions = 0;
                  false_susp = 0;
                  refuted = 0;
                  d_epochs = 0;
                  d_resubmits = 0;
                  stab_acks = 0;
                  d_duration = 0;
                }
            in
            for seed = 0 to seeds - 1 do
              let cfg =
                {
                  Runner.default_config with
                  n_procs = procs;
                  n_objects = spec.Mmc_workload.Spec.n_objects;
                  ops_per_proc = ops;
                  kind = Store.Rmsc;
                  fault = plan;
                  detector;
                }
              in
              let res =
                Runner.run ~seed cfg
                  ~workload:(Mmc_workload.Generator.mixed spec)
              in
              let a = !acc in
              let a = if admissible res then { a with d_ok = a.d_ok + 1 } else a in
              acc :=
                (match res.Runner.recovery with
                | None -> a
                | Some h ->
                  let b = h.Rstore.broadcast_stats () in
                  let ds =
                    match h.Rstore.detector_stats () with
                    | Some s -> s
                    | None ->
                      {
                        Detector.beats_sent = 0;
                        beats_delivered = 0;
                        suspicions = 0;
                        false_suspicions = 0;
                        refutations = 0;
                        doubts = 0;
                      }
                  in
                  {
                    a with
                    d_conv = (a.d_conv + if h.Rstore.converged () then 1 else 0);
                    suspicions = a.suspicions + ds.Detector.suspicions;
                    false_susp = a.false_susp + ds.Detector.false_suspicions;
                    refuted = a.refuted + ds.Detector.refutations;
                    d_epochs = a.d_epochs + b.Mmc_broadcast.Rbcast.epochs;
                    d_resubmits = a.d_resubmits + b.Mmc_broadcast.Rbcast.resubmits;
                    stab_acks = a.stab_acks + h.Rstore.stability_acks ();
                    d_duration = a.d_duration + res.Runner.duration;
                  })
            done;
            let c = !acc in
            [
              Table.i suspect_after;
              Fmt.str "%.2f" drop;
              frac c.d_ok c.d_of;
              frac c.d_conv c.d_of;
              Table.i c.suspicions;
              Table.i c.false_susp;
              Table.i c.refuted;
              Table.i c.d_epochs;
              Table.i c.d_resubmits;
              Table.i c.stab_acks;
              Table.i (c.d_duration / seeds);
            ])
          drops)
      timeouts
  in
  {
    Table.id = "R4";
    title = "failure detection: suspicion timeout x loss rate";
    header =
      [
        "suspect";
        "drop";
        "admissible";
        "converged";
        "susp";
        "false";
        "refuted";
        "epochs";
        "resub";
        "stab-acks";
        "time";
      ];
    rows;
    notes =
      [
        "admissible and converged must be full in every row: quorum-stable \
         delivery makes safety independent of detector tuning";
        "aggressive timeouts (below a few heartbeat round-trips) under loss \
         produce false suspicions -> extra epochs and resubmissions; the \
         refutation path (incarnation bump) repairs every one";
        "larger timeouts trade those spurious failovers for slower reaction \
         to the real sequencer wipe (the duration column)";
      ];
  }
