(** Sharding experiment (S1): shard count x cross-shard ratio.

    Sweeps the sharded store over S in {1, 2, 4, 8} shards and a
    cross-shard m-operation ratio in {0, 0.05, 0.2}, reporting the
    price of partitioning (messages per m-operation, update latency
    p50/p95/p99, sub-invocation segments) and the verification story:

    - [agree] — the decomposed incremental check pipeline must reach
      the batch {!Mmc_core.Check_constrained} verdict on the stitched
      history in every run (a disagreement is a checker bug);
    - [composes] — how often per-shard admissibility implied stitched
      admissibility.  Less than full is not a bug: Msc-style
      conditions are not compositional (Gotsman et al.), and the runs
      where composition fails are exactly the cross-shard staleness
      anomalies the stitched check exists to catch;
    - per-shard vs stitched check time — the (n/S)^3-per-shard closure
      against the n^3 global one, the Theorem-7 payoff that keeps
      verification polynomial while throughput scales out. *)

open Mmc_core
open Mmc_shard
open Mmc_store

let spec =
  {
    Mmc_workload.Spec.default with
    n_objects = 16;
    read_ratio = 0.5;
    skew = 0.8;
  }

let run_sharded ?(procs = 4) ?(ops = 15) ~seed ~n_shards ~cross () =
  let placement =
    Placement.hash ~n_shards ~n_objects:spec.Mmc_workload.Spec.n_objects
  in
  let cfg =
    {
      Runner.default_config with
      n_procs = procs;
      n_objects = spec.Mmc_workload.Spec.n_objects;
      ops_per_proc = ops;
    }
  in
  Shard_runner.run ~seed ~placement cfg
    ~workload:
      (Mmc_workload.Generator.sharded ~cross_shard_ratio:cross placement spec)

(** One (S, cross-ratio) cell aggregated over seeds. *)
type cell = {
  msgs_per_op : float;
  u_p50 : int;  (** worst update-latency percentiles over the seeds *)
  u_p95 : int;
  u_p99 : int;
  cross_ops : int;
  segments : int;
  agree : int;  (** runs where incremental == batch on the stitched history *)
  composes : int;  (** runs where per-shard verdicts implied the stitched one *)
  of_ : int;
  shard_ms : float;  (** summed per-shard check time over the seeds *)
  global_ms : float;  (** summed stitched batch check time *)
}

let measure ?procs ?ops ~seeds ~n_shards ~cross () =
  let acc =
    ref
      {
        msgs_per_op = 0.;
        u_p50 = 0;
        u_p95 = 0;
        u_p99 = 0;
        cross_ops = 0;
        segments = 0;
        agree = 0;
        composes = 0;
        of_ = seeds;
        shard_ms = 0.;
        global_ms = 0.;
      }
  in
  for seed = 0 to seeds - 1 do
    let res = run_sharded ?procs ?ops ~seed ~n_shards ~cross () in
    let flavour = History.Msc in
    let _, shard_ms =
      Table.time_ms (fun () ->
          Check_sharded.check_shards res.Shard_runner.recorders ~flavour)
    in
    let st = res.Shard_runner.stitched in
    let _, global_ms =
      Table.time_ms (fun () ->
          Check_constrained.check_relation st.Shard_recorder.history
            (Check_sharded.stitched_relation st ~flavour)
            Constraints.WW)
    in
    let v = Shard_runner.check res ~flavour in
    let a = !acc in
    acc :=
      {
        a with
        msgs_per_op =
          a.msgs_per_op
          +. (float_of_int res.Shard_runner.messages
             /. float_of_int (max 1 res.Shard_runner.completed)
             /. float_of_int seeds);
        u_p50 = max a.u_p50 res.Shard_runner.update_latency.Mmc_sim.Stats.p50;
        u_p95 = max a.u_p95 res.Shard_runner.update_latency.Mmc_sim.Stats.p95;
        u_p99 = max a.u_p99 res.Shard_runner.update_latency.Mmc_sim.Stats.p99;
        cross_ops = a.cross_ops + res.Shard_runner.router.Router.cross_shard;
        segments = a.segments + res.Shard_runner.router.Router.segments;
        agree = (a.agree + if v.Check_sharded.agree then 1 else 0);
        composes = (a.composes + if v.Check_sharded.composes then 1 else 0);
        shard_ms = a.shard_ms +. shard_ms;
        global_ms = a.global_ms +. global_ms;
      }
  done;
  !acc

(** S1 — shard count x cross-shard ratio over the msc store. *)
let s1 ?(shards = [ 1; 2; 4; 8 ]) ?(ratios = [ 0.0; 0.05; 0.2 ]) ?(seeds = 3)
    ?(procs = 4) ?(ops = 15) () =
  let rows =
    List.concat_map
      (fun n_shards ->
        List.map
          (fun cross ->
            let c = measure ~procs ~ops ~seeds ~n_shards ~cross () in
            [
              Table.i n_shards;
              Table.f2 cross;
              Table.f1 c.msgs_per_op;
              Table.i c.u_p50;
              Table.i c.u_p95;
              Table.i c.u_p99;
              Table.i c.cross_ops;
              Table.i c.segments;
              Fmt.str "%d/%d" c.agree c.of_;
              Fmt.str "%d/%d" c.composes c.of_;
              Table.f1 c.shard_ms;
              Table.f1 c.global_ms;
            ])
          ratios)
      shards
  in
  {
    Table.id = "S1";
    title = "sharding: shard count x cross-shard ratio (msc per shard)";
    header =
      [
        "S";
        "cross";
        "msg/op";
        "u p50";
        "u p95";
        "u p99";
        "x-ops";
        "segs";
        "agree";
        "composes";
        "shard ms";
        "global ms";
      ];
    rows;
    notes =
      [
        "agree must be full: the decomposed incremental pipeline and the \
         batch checker see the same stitched history and relation";
        "composes < full at S > 1 is the expected Msc composition anomaly \
         (per-shard admissible, globally not) — the stitched check is what \
         catches it; at S = 1 it must be full";
        "msg/op grows with S and cross ratio: each shard runs its own \
         broadcast, cross-shard m-operations pay one sub-invocation per \
         shard touched";
        "shard ms vs global ms: per-shard closures cost ~(n/S)^3 each \
         against n^3 once; at this table's trace size fixed per-shard \
         costs still dominate — the asymptotic win is the verify-S \
         trajectory in BENCH_core.json (n = 600: 16.9 ms at S = 1 down \
         to 2.6 ms at S = 8)";
      ];
  }

(** S2 — parallel verification: worker domains x shard count.

    The multicore variant of S1's verification columns: the same
    sharded runs, with the per-shard Theorem-7 checks fanned out over
    a {!Mmc_parallel.Pool} of D worker domains (D = 0 is the plain
    sequential path, the baseline of the speedup column).  Wall-clock
    time ({!Table.wall_ms}), because CPU time sums over domains.
    Verdicts are asserted identical to the sequential ones on every
    run — the parallel fan-out must never change an answer, only its
    latency.  Speedups above 1 require actual cores; on a single-CPU
    machine the D >= 2 rows price the barrier/hand-off overhead
    instead. *)
let s2 ?(domains = [ 0; 1; 2; 4 ]) ?(shards = [ 4; 8 ]) ?(seeds = 2)
    ?(procs = 6) ?(ops = 50) () =
  let flavour = History.Msc in
  let verdicts rs = Array.map (fun v -> v.Check_sharded.result) rs in
  let same a b =
    Array.length a = Array.length b
    && Array.for_all2
         (fun x y ->
           match (x, y) with
           | Check_constrained.Admissible _, Check_constrained.Admissible _ ->
             true
           | x, y -> x = y)
         a b
  in
  let rows =
    List.concat_map
      (fun n_shards ->
        let runs =
          List.init seeds (fun seed ->
              run_sharded ~procs ~ops ~seed ~n_shards ~cross:0.1 ())
        in
        let reference =
          List.map
            (fun res ->
              Check_sharded.check_shards res.Shard_runner.recorders ~flavour)
            runs
        in
        let time_with pool =
          List.fold_left2
            (fun acc res ref_ ->
              let vs, ms =
                Table.wall_ms (fun () ->
                    Check_sharded.check_shards ?pool res.Shard_runner.recorders
                      ~flavour)
              in
              if not (same (verdicts vs) (verdicts ref_)) then
                invalid_arg "S2: parallel verdicts diverge from sequential";
              acc +. ms)
            0. runs reference
        in
        let baseline = time_with None in
        List.map
          (fun d ->
            let ms =
              if d = 0 then baseline
              else
                Mmc_parallel.Pool.with_pool ~num_domains:d (fun pool ->
                    time_with (Some pool))
            in
            [
              Table.i n_shards;
              Table.i d;
              Table.f1 ms;
              Table.f2 (baseline /. ms);
            ])
          domains)
      shards
  in
  {
    Table.id = "S2";
    title = "parallel verification: worker domains x shard count (wall ms)";
    header = [ "S"; "D"; "check ms"; "speedup" ];
    rows;
    notes =
      [
        "per-shard Theorem-7 checks submitted to a reusable domain pool, \
         one job per shard; D = 0 is the sequential baseline";
        "verdicts are asserted identical to the sequential run before a \
         row is reported";
        "speedup is wall-clock baseline/ms; it tops out at min(S, D, \
         physical cores) — on a single-core host D >= 2 reports the \
         coordination overhead, not a win";
        "these traces are small (a few ms of checking), so the fixed \
         submit/await hand-off per shard is visible even at D = 1; the \
         large-kernel bench group (metrics/parallel in BENCH_core.json) \
         is where the D = 1 pool path sits within ~10% of sequential";
      ];
  }
