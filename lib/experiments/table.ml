(** Experiment result tables (the rows the paper's evaluation would
    print, per EXPERIMENTS.md). *)

type t = {
  id : string;  (** experiment id from DESIGN.md, e.g. "T1" *)
  title : string;
  header : string list;
  rows : string list list;
  notes : string list;  (** expected shape / interpretation *)
}

let cell_width col table =
  List.fold_left
    (fun acc row -> max acc (String.length (List.nth row col)))
    (String.length (List.nth table.header col))
    table.rows

let render ppf table =
  let n_cols = List.length table.header in
  let widths = List.init n_cols (fun c -> cell_width c table) in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  let render_row row =
    String.concat "  " (List.map2 pad row widths)
  in
  Fmt.pf ppf "@[<v>== %s: %s ==@,%s@,%s@," table.id table.title
    (render_row table.header)
    (String.make (List.fold_left ( + ) (2 * (n_cols - 1)) widths) '-');
  List.iter (fun row -> Fmt.pf ppf "%s@," (render_row row)) table.rows;
  List.iter (fun n -> Fmt.pf ppf "note: %s@," n) table.notes;
  Fmt.pf ppf "@]"

let print table = Fmt.pr "%a@." render table

let f1 x = Fmt.str "%.1f" x
let f2 x = Fmt.str "%.2f" x
let i = string_of_int

(** CPU-time a thunk, in milliseconds. *)
let time_ms f =
  let t0 = Sys.time () in
  let result = f () in
  let t1 = Sys.time () in
  (result, (t1 -. t0) *. 1000.0)

(** Wall-clock a thunk, in milliseconds.  For multicore measurements:
    CPU time sums over worker domains, wall time is what a parallel
    run actually saves. *)
let wall_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  let t1 = Unix.gettimeofday () in
  (result, (t1 -. t0) *. 1000.0)
