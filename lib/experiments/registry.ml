(** All experiments, by DESIGN.md identifier. *)

type entry = {
  id : string;
  description : string;
  run : unit -> Table.t;
  quick : unit -> Table.t;  (** reduced sizes for `dune runtest`/CI *)
}

let all : entry list =
  [
    {
      id = "T1";
      description = "exhaustive vs Theorem-7 checking cost";
      run = (fun () -> Exp_checker.t1 ());
      quick = (fun () -> Exp_checker.t1 ~sizes:[ 4; 6; 8 ] ~seeds:2 ());
    };
    {
      id = "T2";
      description = "single-object polynomial vs multi-object exhaustive";
      run = (fun () -> Exp_checker.t2 ());
      quick = (fun () -> Exp_checker.t2 ~sizes:[ 6; 10 ] ~seeds:2 ());
    };
    {
      id = "T7";
      description = "legality <=> admissibility under WW";
      run = (fun () -> Exp_checker.t7 ());
      quick = (fun () -> Exp_checker.t7 ~n_histories:15 ());
    };
    {
      id = "P1";
      description = "m-SC protocol latency by class";
      run = (fun () -> Exp_protocol.p1 ());
      quick = (fun () -> Exp_protocol.p1 ~procs:[ 2; 4 ] ());
    };
    {
      id = "P2";
      description = "m-linearizability protocol latency by class";
      run = (fun () -> Exp_protocol.p2 ());
      quick = (fun () -> Exp_protocol.p2 ~procs:[ 2; 4 ] ());
    };
    {
      id = "P3";
      description = "read-ratio sweep across stores";
      run = (fun () -> Exp_protocol.p3 ());
      quick = (fun () -> Exp_protocol.p3 ~ratios:[ 0.0; 0.5; 1.0 ] ());
    };
    {
      id = "P4";
      description = "atomic broadcast ablation";
      run = (fun () -> Exp_broadcast.p4 ());
      quick = (fun () -> Exp_broadcast.p4 ~sizes:[ 2; 4 ] ());
    };
    {
      id = "B1";
      description = "broadcast batching: batch size x fan-out sweep";
      run = (fun () -> Exp_broadcast.b1 ());
      quick = (fun () -> Exp_broadcast.b1 ~ks:[ 1; 8 ] ());
    };
    {
      id = "P5";
      description = "DCAS under contention";
      run = (fun () -> Exp_objects.p5 ());
      quick = (fun () -> Exp_objects.p5 ~procs:[ 1; 2 ] ~attempts:5 ());
    };
    {
      id = "C1";
      description = "conservative write-set classification cost";
      run = (fun () -> Exp_protocol.c1 ());
      quick = (fun () -> Exp_protocol.c1 ());
    };
    {
      id = "J1";
      description = "latency-model ablation (tail sensitivity)";
      run = (fun () -> Exp_protocol.j1 ());
      quick = (fun () -> Exp_protocol.j1 ());
    };
    {
      id = "V1";
      description = "protocol correctness summary";
      run = (fun () -> Exp_protocol.v1 ());
      quick = (fun () -> Exp_protocol.v1 ~seeds:3 ());
    };
    {
      id = "W1";
      description = "consistency spectrum: causal vs m-SC vs m-lin";
      run = (fun () -> Exp_protocol.w1 ());
      quick = (fun () -> Exp_protocol.w1 ~seeds:3 ());
    };
    {
      id = "L1";
      description = "2PL vs broadcast under write contention";
      run = (fun () -> Exp_protocol.l1 ());
      quick = (fun () -> Exp_protocol.l1 ~procs:[ 2; 4 ] ());
    };
    {
      id = "A1";
      description = "clock/delay assumptions: Attiya-Welch vs Figure 6";
      run = (fun () -> Exp_protocol.a1 ());
      quick = (fun () -> Exp_protocol.a1 ~seeds:3 ());
    };
    {
      id = "V2";
      description = "verifying protocol traces: Theorem 7 pipeline vs NP";
      run = (fun () -> Exp_checker.v2 ());
      quick = (fun () -> Exp_checker.v2 ~sizes:[ 30; 60 ] ());
    };
    {
      id = "R1";
      description = "fault injection: drop-rate sweep + sequencer partition";
      run = (fun () -> Exp_faults.f1 ());
      quick = (fun () -> Exp_faults.f1 ~drops:[ 0.0; 0.3 ] ~seeds:2 ~ops:8 ());
    };
    {
      id = "R2";
      description = "fault injection: outage-length sweep (partition + crash)";
      run = (fun () -> Exp_faults.f2 ());
      quick = (fun () -> Exp_faults.f2 ~lengths:[ 0; 250 ] ~seeds:2 ~ops:8 ());
    };
    {
      id = "R3";
      description = "crash recovery: wipe schedule x checkpoint interval";
      run = (fun () -> Exp_recovery.r3 ());
      quick =
        (fun () ->
          Exp_recovery.r3 ~intervals:[ 4; 64 ] ~seeds:2 ~ops:8
            ~schedule_names:[ "seq"; "seq+flw" ] ());
    };
    {
      id = "R4";
      description = "failure detection: suspicion timeout x loss rate";
      run = (fun () -> Exp_recovery.r4 ());
      quick =
        (fun () ->
          Exp_recovery.r4 ~timeouts:[ 60; 200 ] ~drops:[ 0.0; 0.2 ] ~seeds:2
            ~ops:8 ());
    };
    {
      id = "R5";
      description = "storage faults: fault mix x checkpoint interval";
      run = (fun () -> Exp_recovery.r5 ());
      quick =
        (fun () ->
          Exp_recovery.r5 ~intervals:[ 16 ] ~seeds:2 ~ops:8
            ~mix_names:[ "tear"; "tear+rot+stale" ] ());
    };
    {
      id = "S1";
      description = "sharding: shard count x cross-shard ratio";
      run = (fun () -> Exp_shard.s1 ());
      quick =
        (fun () ->
          Exp_shard.s1 ~shards:[ 1; 4 ] ~ratios:[ 0.0; 0.2 ] ~seeds:2 ~ops:8 ());
    };
    {
      id = "S2";
      description = "parallel verification: worker domains x shard count";
      run = (fun () -> Exp_shard.s2 ());
      quick =
        (fun () ->
          Exp_shard.s2 ~domains:[ 0; 2 ] ~shards:[ 4 ] ~seeds:1 ~ops:12 ());
    };
    {
      id = "F1";
      description = "coordination avoidance: commute-ratio sweep (seg vs msc)";
      run = (fun () -> Exp_fastpath.f1 ());
      quick =
        (fun () ->
          Exp_fastpath.f1 ~ratios:[ 0.0; 0.9; 1.0 ] ~n_shards:4 ~ops:12 ());
    };
    {
      id = "M1";
      description = "streaming verification: arrival rate x window";
      run = (fun () -> Exp_stream.m1 ());
      quick =
        (fun () ->
          Exp_stream.m1 ~rates:[ 6; 2 ] ~windows:[ 128; 512 ] ~ops:4_000 ());
    };
    {
      id = "Z1";
      description = "Zipf contention skew: 2PL vs broadcast";
      run = (fun () -> Exp_protocol.z1 ());
      quick = (fun () -> Exp_protocol.z1 ~skews:[ 0.0; 1.5 ] ());
    };
  ]

let find id = List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all
