(** Atomic broadcast ablation (P4): fixed sequencer vs decentralized
    Lamport/ISIS, delivery latency and message complexity vs system
    size. *)

open Mmc_sim
open Mmc_broadcast

(* Broadcast [k] payloads from rotating senders; measure per-payload
   delivery completion time (send until delivered at every node) and
   transport messages. *)
let measure ?batch ~impl ~n ~k ~latency ~seed () =
  let e = Engine.create () in
  let rng = Rng.create seed in
  let send_time = Hashtbl.create 16 in
  let deliveries = Hashtbl.create 16 in
  let completion = Stats.create () in
  let ab =
    (Select.factory impl) ?batch e ~n ~latency ~rng
      ~deliver:(fun ~node:_ ~origin:_ payload ->
        let c = 1 + Option.value ~default:0 (Hashtbl.find_opt deliveries payload) in
        Hashtbl.replace deliveries payload c;
        if c = n then
          Stats.add completion (Engine.now e - Hashtbl.find send_time payload))
  in
  for i = 0 to k - 1 do
    let sender = i mod n in
    Engine.schedule e ~delay:(i * 40) (fun () ->
        Hashtbl.replace send_time i (Engine.now e);
        Abcast.broadcast ab ~src:sender i)
  done;
  Engine.run e;
  (Stats.summarize completion, Abcast.messages_sent ab / k)

let p4 ?(sizes = [ 2; 4; 8; 16 ]) () =
  let rows =
    List.map
      (fun n ->
        let seq_sum, seq_msgs =
          measure ~impl:Abcast.Sequencer_impl ~n ~k:30
            ~latency:(Latency.Uniform (5, 15)) ~seed:3 ()
        in
        let lam_sum, lam_msgs =
          measure ~impl:Abcast.Lamport_impl ~n ~k:30
            ~latency:(Latency.Uniform (5, 15)) ~seed:3 ()
        in
        [
          Table.i n;
          Table.i seq_sum.Stats.p50;
          Table.i seq_sum.Stats.p95;
          Table.i seq_msgs;
          Table.i lam_sum.Stats.p50;
          Table.i lam_sum.Stats.p95;
          Table.i lam_msgs;
        ])
      sizes
  in
  {
    Table.id = "P4";
    title = "atomic broadcast ablation: sequencer vs lamport";
    header =
      [
        "procs";
        "seq p50";
        "seq p95";
        "seq msgs";
        "lam p50";
        "lam p95";
        "lam msgs";
      ];
    rows;
    notes =
      [
        "sequencer: 2 hops, n+1 messages; lamport: 1 hop + ack stability, \
         n+n^2 messages";
        "delivery completion measured until the last replica delivers";
      ];
  }

(** Batching / dissemination sweep (B1): sequencer broadcast at n = 8,
    batch size k with a 60-unit flush window, flat fan-out vs a binary
    dissemination tree; plus the Lamport broadcast flat vs
    convergecast tree for the same load.  Messages are per broadcast —
    batching amortizes the [Ordered] fan-out over the batch, the tree
    cuts the root's egress, and both pay for it in flush latency. *)
let b1 ?(ks = [ 1; 2; 4; 8 ]) () =
  let n = 8 in
  let latency = Latency.Uniform (5, 15) in
  let k_sends = 40 in
  let rows =
    List.map
      (fun k ->
        let batch flush_every fanout =
          Batch.make ~size:k ~flush_every ~fanout ()
        in
        (* k = 1 keeps the legacy wire behaviour (no flush timer). *)
        let flush = if k = 1 then 0 else 60 in
        let flat_sum, flat_msgs =
          measure ~batch:(batch flush 0) ~impl:Abcast.Sequencer_impl ~n
            ~k:k_sends ~latency ~seed:3 ()
        in
        let tree_sum, tree_msgs =
          measure ~batch:(batch flush 2) ~impl:Abcast.Sequencer_impl ~n
            ~k:k_sends ~latency ~seed:3 ()
        in
        [
          Table.i k;
          Table.i flat_sum.Stats.p50;
          Table.i flat_sum.Stats.p95;
          Table.i flat_msgs;
          Table.i tree_sum.Stats.p50;
          Table.i tree_sum.Stats.p95;
          Table.i tree_msgs;
        ])
      ks
  in
  let lam_row fanout =
    let sum, msgs =
      measure
        ~batch:(Batch.make ~fanout ())
        ~impl:Abcast.Lamport_impl ~n ~k:k_sends ~latency ~seed:3 ()
    in
    (sum, msgs)
  in
  let lam_flat, lam_flat_msgs = lam_row 0 in
  let lam_tree, lam_tree_msgs = lam_row 2 in
  {
    Table.id = "B1";
    title = "broadcast batching and dissemination: batch size x fan-out";
    header =
      [
        "batch";
        "flat p50";
        "flat p95";
        "flat msgs";
        "tree p50";
        "tree p95";
        "tree msgs";
      ];
    rows;
    notes =
      [
        "sequencer, n=8, 40 broadcasts, 60-unit flush window (batch>1); \
         msgs are per broadcast";
        Fmt.str
          "lamport at same load: flat %d msgs/bcast p50 %d; convergecast \
           tree (fanout 2) %d msgs/bcast p50 %d (3(n-1) = %d per bcast)"
          lam_flat_msgs lam_flat.Stats.p50 lam_tree_msgs lam_tree.Stats.p50
          (3 * (n - 1));
      ];
  }
