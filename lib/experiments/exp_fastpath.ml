(** Coordination-avoidance experiment (F1): commute-ratio sweep,
    seg vs msc.

    The same sharded counter workload (S8, 6 clients) runs once per
    commute ratio through the seg store — confluent operations applied
    locally, sequenced ones escalated behind the flush barrier — and
    once through msc, where every update pays the broadcast.  Reported
    per ratio: closed-loop throughput (completed ops per 1000 virtual
    time units) and its seg/msc quotient, messages and escalations per
    op, the coordination reduction (sequencer rounds per op, msc over
    seg), and the Theorem-7 verdicts.  Verdict equality seg vs msc is
    asserted, not just printed: the fast path is only admissible
    because the oracle says so on every run. *)

open Mmc_core
open Mmc_shard
open Mmc_store

let spec =
  { Mmc_workload.Spec.default with n_objects = 32; read_ratio = 0.5 }

let run ~kind ~n_shards ~procs ~ops ~commute_ratio ~seed =
  let placement =
    Placement.hash ~n_shards ~n_objects:spec.Mmc_workload.Spec.n_objects
  in
  let cfg =
    {
      Runner.default_config with
      n_procs = procs;
      n_objects = spec.Mmc_workload.Spec.n_objects;
      ops_per_proc = ops;
      kind;
    }
  in
  Shard_runner.run ~seed ~placement cfg
    ~workload:
      (Mmc_workload.Generator.sharded_counter_commute ~commute_ratio
         ~n_procs:procs placement spec)

let sequencer_rounds (res : Shard_runner.result) =
  (* msc coordinates once per update (every update record carries a
     broadcast position); seg only on escalation. *)
  match
    Array.to_list res.Shard_runner.fastpath |> List.filter_map Fun.id
  with
  | [] ->
    Array.fold_left
      (fun acc rec_ ->
        List.fold_left
          (fun acc (r : Recorder.record) ->
            if r.Recorder.sync <> None then acc + 1 else acc)
          acc (Recorder.records rec_))
      0 res.Shard_runner.recorders
  | handles ->
    List.fold_left
      (fun acc (h : Seg_store.handle) ->
        acc + h.Seg_store.stats.Seg_store.escalated)
      0 handles

let f1 ?(ratios = [ 0.0; 0.25; 0.5; 0.75; 0.9; 1.0 ]) ?(n_shards = 8)
    ?(procs = 6) ?(ops = 60) ?(seed = 12) () =
  let flavour = History.Msc in
  let per_op res n =
    float_of_int n /. float_of_int (max 1 res.Shard_runner.completed)
  in
  let throughput res =
    1000. *. float_of_int res.Shard_runner.completed
    /. float_of_int (max 1 res.Shard_runner.duration)
  in
  let verdict res =
    let c = Shard_runner.check ~oracle:false res ~flavour in
    Check_sharded.all_shards_admissible c
  in
  let rows =
    List.map
      (fun ratio ->
        let seg =
          run ~kind:Store.Seg ~n_shards ~procs ~ops ~commute_ratio:ratio ~seed
        in
        let msc =
          run ~kind:Store.Msc ~n_shards ~procs ~ops ~commute_ratio:ratio ~seed
        in
        let v_seg = verdict seg and v_msc = verdict msc in
        if v_seg <> v_msc then
          invalid_arg
            (Fmt.str
               "F1: per-shard Theorem-7 verdicts diverge at ratio %.2f (seg \
                %b, msc %b)"
               ratio v_seg v_msc);
        let rounds_seg = sequencer_rounds seg in
        let coord =
          if rounds_seg = 0 then float_of_int (sequencer_rounds msc)
          else per_op msc (sequencer_rounds msc) /. per_op seg rounds_seg
        in
        [
          Table.f2 ratio;
          Table.f1 (throughput seg);
          Table.f1 (throughput msc);
          Table.f2 (throughput seg /. Float.max 1e-9 (throughput msc));
          Table.f2 (per_op seg seg.Shard_runner.messages);
          Table.f2 (per_op msc msc.Shard_runner.messages);
          Table.f2 (per_op seg rounds_seg);
          Table.f1 coord;
          (if v_seg then "PASS" else "FAIL");
        ])
      ratios
  in
  {
    Table.id = "F1";
    title = "coordination avoidance: commute-ratio sweep (seg vs msc, S8)";
    header =
      [
        "ratio";
        "seg op/kt";
        "msc op/kt";
        "speedup";
        "seg msg/op";
        "msc msg/op";
        "esc/op";
        "coord red.";
        "T7";
      ];
    rows;
    notes =
      [
        "one run per (ratio, store), same seed and workload; ratio is the \
         generator's probability that an update is a confluent \
         fetch-and-add on an owned counter rather than a sequenced \
         cross-owner move";
        "coord red. = sequencer rounds per op, msc over seg: every avoided \
         round is sequencer capacity another client can use — the \
         closed-loop speedup column is latency-bound and lands far lower \
         (an escalation costs ~4 one-way latencies against ~2 for an msc \
         update)";
        "T7 is the per-shard Theorem-7 verdict, asserted equal between \
         seg and msc before the row is reported; at ratio 1.0 the seg \
         store never broadcasts at all and verification still passes";
      ];
  }
