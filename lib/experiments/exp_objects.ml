(** Multi-object operation experiments (P5): DCAS under contention —
    the paper's motivating operation — through the replicated stores. *)

open Mmc_core
open Mmc_store
open Mmc_sim
open Mmc_broadcast

(* Contended counter-style DCAS: each client repeatedly reads the pair,
   then attempts a DCAS from the values it saw to incremented values.
   Under m-linearizability the pair stays synchronized (x1 = x0 at
   quiescence if all DCAS increment both by 1). *)
let run_dcas ~kind ~n_procs ~attempts ~seed =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let recorder = Recorder.create ~n_objects:2 in
  let latency = Latency.Uniform (5, 15) in
  let store =
    match kind with
    | Store.Mlin ->
      Mlin_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng
        ~abcast_impl:Abcast.Sequencer_impl ~recorder
    | Store.Central ->
      Central_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng ~recorder
    | Store.Msc ->
      Msc_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng
        ~abcast_impl:Abcast.Sequencer_impl ~recorder
    | Store.Local -> Local_store.create engine ~n:n_procs ~n_objects:2 ~recorder
    | Store.Causal ->
      Causal_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng ~recorder
    | Store.Lock ->
      Lock_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng ~recorder
    | Store.Aw ->
      Aw_store.create engine ~n:n_procs ~n_objects:2 ~latency ~rng ~delta:15
        ~recorder
    | Store.Rmsc | Store.Seg ->
      invalid_arg "exp_objects: not ablated here"
  in
  let successes = ref 0 in
  let ops = ref 0 in
  let lat = Stats.create () in
  let rec client proc remaining () =
    if remaining > 0 then begin
      let t0 = Engine.now engine in
      (* Optimistic read-then-DCAS. *)
      Store.invoke store ~proc (Mmc_objects.Massign.snapshot [ 0; 1 ])
        ~k:(fun snap ->
          match snap with
          | Value.List [ v0; v1 ] ->
            Engine.schedule engine ~delay:1 (fun () ->
                Store.invoke store ~proc
                  (Mmc_objects.Dcas.dcas 0 1 ~old1:v0 ~old2:v1
                     ~new1:(Value.Int (Value.to_int v0 + 1))
                     ~new2:(Value.Int (Value.to_int v1 + 1)))
                  ~k:(fun r ->
                    incr ops;
                    Stats.add lat (Engine.now engine - t0);
                    if Value.equal r (Value.Bool true) then incr successes;
                    Engine.schedule engine ~delay:2
                      (client proc (remaining - 1))))
          | _ -> failwith "bad snapshot")
    end
  in
  for p = 0 to n_procs - 1 do
    Engine.schedule engine ~delay:(1 + p) (client p attempts)
  done;
  Engine.run engine;
  let h, _ = Recorder.to_history recorder in
  (!successes, !ops, Stats.summarize lat, h)

let p5 ?(procs = [ 1; 2; 4; 8 ]) ?(attempts = 10) () =
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun kind ->
            let succ, ops, lat, _ = run_dcas ~kind ~n_procs:n ~attempts ~seed:5 in
            [
              Table.i n;
              Fmt.str "%a" Store.pp_kind kind;
              Table.i ops;
              Table.i succ;
              Table.f2 (float_of_int succ /. float_of_int (max 1 ops));
              Table.f1 lat.Stats.mean;
            ])
          [ Store.Mlin; Store.Central ])
      procs
  in
  {
    Table.id = "P5";
    title = "DCAS under contention: optimistic read-then-DCAS loop";
    header =
      [ "procs"; "store"; "attempts"; "successes"; "success rate"; "mean lat" ];
    rows;
    notes =
      [
        "success rate falls with contention: snapshots go stale between \
         read and DCAS";
        "both stores keep the operation atomic; they differ in cost, not \
         semantics";
      ];
  }
