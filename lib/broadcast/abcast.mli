(** Atomic (total order) broadcast: every process delivers every
    payload, all in the same order.  The paper's protocols synchronize
    update m-operations through this primitive; the store layer is
    parametric in the implementation. *)

type 'p t = {
  name : string;
  broadcast : src:int -> 'p -> unit;
  messages_sent : unit -> int;
      (** transport messages used so far (message-complexity
          experiments) *)
}

val broadcast : 'p t -> src:int -> 'p -> unit
val messages_sent : 'p t -> int
val name : 'p t -> string

(** Implementations are functions of this shape; [deliver] is invoked
    at every node, in the agreed total order.  [duplicate] makes the
    underlying network at-least-once; both implementations suppress
    duplicates and still deliver exactly once.  [fault] attaches a
    fault injector: the implementation then runs over the reliable
    ack/retransmit transport and keeps its guarantees over message
    loss, partitions and crash/recovery windows.  [batch] configures
    sequencer-side batching and tree dissemination ({!Batch}); the
    default {!Batch.unbatched} reproduces the pre-batching wire
    behaviour. *)
type 'p factory =
  ?duplicate:float ->
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Batch.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  deliver:(node:int -> origin:int -> 'p -> unit) ->
  'p t

type impl = Sequencer_impl | Lamport_impl

val pp_impl : Format.formatter -> impl -> unit
