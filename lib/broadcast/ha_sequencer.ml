(** Sequencer atomic broadcast with epoch-numbered failover
    (implementation notes; model in the interface).

    Determinism: epoch boundaries are derived from the fault plan (a
    perfect failure detector), so every node switches epoch at the
    same virtual instant via a locally scheduled event.  Boundary
    events are scheduled at creation time and therefore execute before
    any message delivery at the same instant.

    Durability: the ordering metadata — seen positions with their
    (origin, oseq) stamp, learned epoch closes, fenced holes — is
    stable storage and survives wipe-crashes (the sequenced log is the
    upstream of the store's WAL).  Client pending-request tables and
    sequencer request buffers are volatile but self-healing: origins
    resubmit unacked requests and the takeover sync rebuilds the
    per-origin stamped sets, so a lost buffer only delays stamping.

    Takeover sync safety: at a boundary every node freezes the old
    epoch before any later-timestamped message can arrive, so a
    position delivered anywhere is in some live node's [seen] set by
    the time its Sync_ack is computed.  Hence [base] (the exclusive
    high-water over all acks) covers every delivered position, and a
    position [< base] held by nobody live was delivered nowhere live —
    it is fenced as a hole and skipped as a no-op everywhere.  The
    residual risk — a replica that delivered a position and is down
    across the epoch change that fences it — is the classical
    optimistic-delivery anomaly; it is detected by the convergence
    check and discussed in DESIGN.md §12. *)

open Mmc_sim

type 'p msg =
  | Request of { origin : int; oseq : int; payload : 'p }
  | Ordered of { epoch : int; pos : int; origin : int; oseq : int; payload : 'p }
  | Sync_req of { epoch : int }
  | Sync_ack of {
      epoch : int;
      node : int;
      held : (int * int * int) list;  (** (pos, origin, oseq) *)
      high : int;
    }
  | New_epoch of { epoch : int; base : int; holes : int list }

type 'p node_state = {
  (* --- durable ordering metadata --- *)
  seen : (int, int * int) Hashtbl.t;  (** pos -> (origin, oseq); holes (-1,-1) *)
  closes : (int, int * int list) Hashtbl.t;  (** epoch -> (base, holes) *)
  fenced : (int, unit) Hashtbl.t;
  mutable epoch : int;
  mutable limbo : (int * int * int * int * 'p) list;
      (** stale [(epoch, pos, origin, oseq, payload)] awaiting a close *)
  (* --- client side (volatile) --- *)
  mutable next_oseq : int;
  pending : (int, 'p) Hashtbl.t;  (** oseq -> payload, not yet ordered *)
  mutable resubmit_scheduled : bool;
  mutable resubmit_attempts : int;
  (* --- sequencer side (volatile) --- *)
  requests : (int, 'p) Hashtbl.t array;  (** per-origin oseq -> payload *)
  stamped : (int, unit) Hashtbl.t array;  (** per-origin stamped oseqs *)
  cursors : int array;
  mutable serving : bool;
  mutable next_pos : int;
  awaiting : (int, unit) Hashtbl.t;  (** peers still to Sync_ack *)
  merged : (int, int * int) Hashtbl.t;  (** sync merge of held triples *)
  mutable sync_high : int;
}

let resubmit_after = 30
let resubmit_every = 80
let max_resubmit = 50

(* The epoch schedule: (boundary instant, sequencer) for every change
   of the lowest-live-id rule over the fault plan's crash instants. *)
let views_of_plan plan ~n =
  let instants =
    List.sort_uniq compare (0 :: Fault.crash_instants plan)
  in
  let sigma t =
    let rec find i =
      if i >= n then 0
      else if Fault.up_in_plan plan ~now:t ~node:i then i
      else find (i + 1)
    in
    find 0
  in
  List.rev
    (List.fold_left
       (fun acc t ->
         let s = sigma t in
         match acc with
         | (_, s') :: _ when s' = s -> acc
         | _ -> (t, s) :: acc)
       [] instants)

let create ?duplicate ?fault ?reliable engine ~n ~latency ~rng ~deliver :
    'p Rbcast.t =
  let net =
    Transport.create ?duplicate ?fault ?config:reliable engine ~n ~latency ~rng
  in
  let plan =
    match fault with Some f -> Fault.plan f | None -> Fault.none
  in
  let views = Array.of_list (views_of_plan plan ~n) in
  let sigma_of epoch = snd views.(epoch) in
  let epochs = ref 0
  and syncs = ref 0
  and holes_total = ref 0
  and fenced_total = ref 0
  and resubmits = ref 0 in
  let states =
    Array.init n (fun _ ->
        {
          seen = Hashtbl.create 64;
          closes = Hashtbl.create 4;
          fenced = Hashtbl.create 8;
          epoch = 0;
          limbo = [];
          next_oseq = 0;
          pending = Hashtbl.create 8;
          resubmit_scheduled = false;
          resubmit_attempts = 0;
          requests = Array.init n (fun _ -> Hashtbl.create 8);
          stamped = Array.init n (fun _ -> Hashtbl.create 8);
          cursors = Array.make n 0;
          serving = false;
          next_pos = 0;
          awaiting = Hashtbl.create 8;
          merged = Hashtbl.create 64;
          sync_high = 0;
        })
  in
  let accept node ~pos ~origin ~oseq payload =
    let st = states.(node) in
    if not (Hashtbl.mem st.seen pos) then begin
      Hashtbl.replace st.seen pos (origin, oseq);
      if origin = node then begin
        Hashtbl.remove st.pending oseq;
        st.resubmit_attempts <- 0
      end;
      deliver ~node ~origin ~pos (Some payload)
    end
  in
  (* Resolve an Ordered message stamped in a now-closed epoch: valid
     iff it fits under the close of [epoch + 1] (exactly that close —
     a later base would admit positions restamped by an intermediate
     epoch) and was not fenced as a hole by any later change. *)
  let resolve_stale node ~epoch ~pos ~origin ~oseq payload =
    let st = states.(node) in
    match Hashtbl.find_opt st.closes (epoch + 1) with
    | None ->
      st.limbo <- (epoch, pos, origin, oseq, payload) :: st.limbo;
      true
    | Some (base, _) ->
      if pos < base && not (Hashtbl.mem st.fenced pos) then
        accept node ~pos ~origin ~oseq payload
      else incr fenced_total;
      false
  in
  let learn_close node ~epoch ~base ~holes =
    let st = states.(node) in
    if not (Hashtbl.mem st.closes epoch) then begin
      Hashtbl.replace st.closes epoch (base, holes);
      List.iter
        (fun h ->
          Hashtbl.replace st.fenced h ();
          if not (Hashtbl.mem st.seen h) then begin
            Hashtbl.replace st.seen h (-1, -1);
            deliver ~node ~origin:(-1) ~pos:h None
          end)
        holes;
      let limbo = st.limbo in
      st.limbo <- [];
      List.iter
        (fun (e, pos, origin, oseq, payload) ->
          ignore (resolve_stale node ~epoch:e ~pos ~origin ~oseq payload))
        limbo
    end
  in
  (* Sequencer: stamp origin's requests in oseq order, skipping oseqs
     already stamped (learned from the takeover sync). *)
  let rec stamp_loop node origin =
    let st = states.(node) in
    if st.serving then
      let c = st.cursors.(origin) in
      if Hashtbl.mem st.stamped.(origin) c then begin
        Hashtbl.remove st.requests.(origin) c;
        st.cursors.(origin) <- c + 1;
        stamp_loop node origin
      end
      else
        match Hashtbl.find_opt st.requests.(origin) c with
        | None -> ()
        | Some payload ->
          Hashtbl.remove st.requests.(origin) c;
          Hashtbl.replace st.stamped.(origin) c ();
          st.cursors.(origin) <- c + 1;
          let pos = st.next_pos in
          st.next_pos <- pos + 1;
          Transport.send_all net ~src:node
            (Ordered { epoch = st.epoch; pos; origin; oseq = c; payload });
          stamp_loop node origin
  in
  let finish_sync node =
    let st = states.(node) in
    let base = st.sync_high in
    let holes = ref [] in
    for pos = base - 1 downto 0 do
      if not (Hashtbl.mem st.merged pos) then holes := pos :: !holes
    done;
    let holes = !holes in
    holes_total := !holes_total + List.length holes;
    Array.iter Hashtbl.reset st.stamped;
    Hashtbl.iter
      (fun _pos (origin, oseq) ->
        if origin >= 0 then Hashtbl.replace st.stamped.(origin) oseq ())
      st.merged;
    for o = 0 to n - 1 do
      let c = ref 0 in
      while Hashtbl.mem st.stamped.(o) !c do
        incr c
      done;
      st.cursors.(o) <- !c
    done;
    st.next_pos <- base;
    st.serving <- true;
    incr syncs;
    learn_close node ~epoch:st.epoch ~base ~holes;
    Transport.send_all net ~src:node (New_epoch { epoch = st.epoch; base; holes });
    for o = 0 to n - 1 do
      stamp_loop node o
    done
  in
  let start_sync node epoch boundary =
    let st = states.(node) in
    st.serving <- false;
    Hashtbl.reset st.awaiting;
    Hashtbl.reset st.merged;
    Hashtbl.iter (fun pos stamp -> Hashtbl.replace st.merged pos stamp) st.seen;
    st.sync_high <-
      Hashtbl.fold (fun pos _ hi -> max hi (pos + 1)) st.seen 0;
    for peer = 0 to n - 1 do
      if peer <> node && Fault.up_in_plan plan ~now:boundary ~node:peer then
        Hashtbl.replace st.awaiting peer ()
    done;
    if Hashtbl.length st.awaiting = 0 then finish_sync node
    else
      Hashtbl.iter
        (fun peer () ->
          Transport.send net ~src:node ~dst:peer (Sync_req { epoch }))
        st.awaiting
  in
  (* Client retry: after an epoch change (or give-up silence), re-send
     every unordered request to the current sequencer, with backoff. *)
  let rec schedule_resubmit node ~delay =
    let st = states.(node) in
    if not st.resubmit_scheduled then begin
      st.resubmit_scheduled <- true;
      Engine.schedule engine ~delay (fun () ->
          st.resubmit_scheduled <- false;
          if
            Hashtbl.length st.pending > 0
            && st.resubmit_attempts < max_resubmit
          then begin
            st.resubmit_attempts <- st.resubmit_attempts + 1;
            let dst = sigma_of st.epoch in
            Hashtbl.iter
              (fun oseq payload ->
                incr resubmits;
                Transport.send net ~src:node ~dst
                  (Request { origin = node; oseq; payload }))
              st.pending;
            schedule_resubmit node ~delay:resubmit_every
          end)
    end
  in
  let on_boundary node epoch =
    let st = states.(node) in
    st.epoch <- epoch;
    if node = 0 then incr epochs;
    let boundary, seq = views.(epoch) in
    if seq = node then
      if epoch = 0 then st.serving <- true else start_sync node epoch boundary
    else st.serving <- false;
    if Hashtbl.length st.pending > 0 then begin
      st.resubmit_attempts <- 0;
      schedule_resubmit node ~delay:resubmit_after
    end
  in
  for node = 0 to n - 1 do
    Array.iteri
      (fun epoch (t, _) ->
        if epoch = 0 then on_boundary node 0
        else Engine.at engine ~time:t (fun () -> on_boundary node epoch))
      views;
    Transport.set_handler net node (fun src msg ->
        let st = states.(node) in
        match msg with
        | Request { origin; oseq; payload } ->
          (* Stale routing (sequencer changed while in flight) is
             dropped; the origin resubmits against the new epoch. *)
          if sigma_of st.epoch = node then
            if not (Hashtbl.mem st.stamped.(origin) oseq) then begin
              if oseq >= st.cursors.(origin) then
                Hashtbl.replace st.requests.(origin) oseq payload;
              if st.serving then stamp_loop node origin
            end
        | Ordered { epoch; pos; origin; oseq; payload } ->
          if epoch >= st.epoch then accept node ~pos ~origin ~oseq payload
          else ignore (resolve_stale node ~epoch ~pos ~origin ~oseq payload)
        | Sync_req { epoch } ->
          let held =
            Hashtbl.fold
              (fun pos (origin, oseq) acc -> (pos, origin, oseq) :: acc)
              st.seen []
          in
          let high =
            Hashtbl.fold (fun pos _ hi -> max hi (pos + 1)) st.seen 0
          in
          Transport.send net ~src:node ~dst:src
            (Sync_ack { epoch; node; held; high })
        | Sync_ack { epoch; node = peer; held; high } ->
          if epoch = st.epoch && Hashtbl.mem st.awaiting peer then begin
            Hashtbl.remove st.awaiting peer;
            List.iter
              (fun (pos, origin, oseq) ->
                if not (Hashtbl.mem st.merged pos) then
                  Hashtbl.replace st.merged pos (origin, oseq))
              held;
            st.sync_high <- max st.sync_high high;
            if Hashtbl.length st.awaiting = 0 && not st.serving then
              finish_sync node
          end
        | New_epoch { epoch; base; holes } ->
          learn_close node ~epoch ~base ~holes)
  done;
  {
    Rbcast.name = "ha-sequencer";
    broadcast =
      (fun ~src payload ->
        let st = states.(src) in
        let oseq = st.next_oseq in
        st.next_oseq <- oseq + 1;
        Hashtbl.replace st.pending oseq payload;
        Transport.send net ~src ~dst:(sigma_of st.epoch)
          (Request { origin = src; oseq; payload });
        schedule_resubmit src ~delay:(resubmit_after + resubmit_every));
    messages_sent = (fun () -> Transport.messages_sent net);
    stats =
      (fun () ->
        {
          Rbcast.epochs = !epochs;
          syncs = !syncs;
          holes = !holes_total;
          fenced = !fenced_total;
          resubmits = !resubmits;
        });
  }

let factory : 'p Rbcast.factory = create
