(** Sequencer atomic broadcast with suspicion-driven failover
    (implementation notes; model in the interface).

    Failure detection: a {!Mmc_sim.Detector} runs heartbeats on the
    same fault-injected wire as the protocol.  Nothing here reads the
    fault plan — re-election is triggered purely by suspicion edges,
    so nodes act on (possibly wrong) local opinions exactly as a real
    deployment would.  A false suspicion costs an epoch change, never
    safety: the falsely suspected sequencer's later messages carry a
    stale epoch and are fenced.

    Epoch ownership: epoch [e] belongs to node [e mod n] (rotating
    coordinator).  A node elects only when it is the smallest id it
    does not suspect, and it elects the smallest owned epoch above its
    current one — so racing candidates claim distinct epochs, the
    lowest-id candidate claims the lowest, and adoption is
    highest-epoch-wins.  A candidate adopting a higher epoch abandons
    its own sync.

    Takeover sync is quorum-gated: the candidate freezes, polls peers
    for their durable position sets, and forms the epoch only once
    itself plus ackers reach a majority.  Timer retries are capped, but
    an unsatisfied election stays open and is revived by unsuspicion
    edges (a healed partition re-adds peers), so liveness needs only a
    majority to eventually become mutually unsuspected.  [base] is one
    past the highest position any sync member holds; positions below
    [base] held by nobody in the quorum are fenced as holes.

    The close of epoch [e] carries [prev] — the highest epoch the
    candidate knows actually {e formed} (stamped something or closed),
    not merely the number it happened to hold: elections race through
    epochs that never form, and a close anchored to an unformed number
    would leave stale messages from the last formed epoch without a
    covering close forever.  The close covers every epoch in [[prev,
    e)]: a stale [Ordered] from epoch [s] is resolved against the
    earliest learned close with [prev <= s < e] (accepted iff below
    that close's base and not already seen).  A close also {e reconciles}: stamps from older
    epochs at/above [base] are withdrawn with [Retract] (the new epoch
    renumbers them), and a fenced hole overriding an older stamp
    retracts it before delivering the hole.  Symmetrically, a
    current-epoch [Ordered] that overtakes its own [New_epoch]
    supersedes an older stamp in place.

    Quorum intersection makes the store's stable mode safe: a position
    acknowledged by a majority has its durable [seen] entry on at
    least one member of any takeover sync quorum, hence it is always
    inside [merged], below [base], and never fenced or renumbered.

    Durability: the ordering metadata — seen positions with their
    (epoch, origin, oseq) stamp, learned closes — survives
    wipe-crashes (the sequenced log is the upstream of the store's
    WAL).  Client pending tables and sequencer request buffers are
    volatile but self-healing: origins resubmit unacked requests and
    the takeover sync rebuilds the per-origin stamped sets. *)

open Mmc_sim

type 'p msg =
  | Request of { origin : int; oseq : int; payload : 'p }
  | Ordered of { epoch : int; items : (int * int * int * 'p) list }
      (** stamped [(pos, origin, oseq, payload)] items sharing the
          stamping epoch — one wire message per flushed batch *)
  | Sync_req of { epoch : int }
  | Sync_ack of {
      epoch : int;
      node : int;
      held : (int * int * int * int) list;
          (** (pos, stamp epoch, origin, oseq); holes [(e, -1, -1)] *)
      high : int;
    }
  | New_epoch of { epoch : int; prev : int; base : int; holes : int list }

(** A learned epoch close: epoch [e]'s sequencer renumbers from
    [base], fenced [holes], and covers stale epochs in [[prev, e)] —
    [prev] being the last epoch the candidate knew had formed. *)
type close = { base : int; holes : int list; prev : int }

type 'p node_state = {
  (* --- durable ordering metadata --- *)
  seen : (int, int * int * int) Hashtbl.t;
      (** pos -> (stamp epoch, origin, oseq); holes [(e, -1, -1)] *)
  closes : (int, close) Hashtbl.t;
  mutable epoch : int;
  mutable limbo : (int * int * int * int * 'p) list;
      (** stale [(epoch, pos, origin, oseq, payload)] awaiting a close *)
  (* --- client side (volatile) --- *)
  mutable next_oseq : int;
  pending : (int, 'p) Hashtbl.t;  (** oseq -> payload, not yet ordered *)
  restamp : (int, 'p) Hashtbl.t;
      (** every own oseq ever stamped, kept so a later retraction of
          that stamp can put the payload back into [pending] *)
  mutable resubmit_scheduled : bool;
  mutable resubmit_attempts : int;
  (* --- sequencer side (volatile) --- *)
  requests : (int, 'p) Hashtbl.t array;  (** per-origin oseq -> payload *)
  stamped : (int, unit) Hashtbl.t array;  (** per-origin stamped oseqs *)
  cursors : int array;
  mutable serving : bool;
  mutable next_pos : int;
  (* --- outgoing stamp batch (sequencer side, volatile) --- *)
  mutable obatch : (int * int * int * 'p) list;  (** newest first *)
  mutable obatch_len : int;
  mutable obatch_epoch : int;  (** stamping epoch of the queued items *)
  mutable oflush_scheduled : bool;
  (* --- candidate sync state (volatile) --- *)
  mutable syncing : bool;
  mutable sync_prev : int;  (** epoch held when this election started *)
  awaiting : (int, unit) Hashtbl.t;  (** peers polled, yet to Sync_ack *)
  acked : (int, unit) Hashtbl.t;  (** peers whose ack was merged *)
  merged : (int, int * int * int) Hashtbl.t;
  mutable sync_high : int;
  mutable sync_attempts : int;
  mutable retry_scheduled : bool;
}

let resubmit_after = 30
let resubmit_every = 80
let max_resubmit = 50
let sync_retry_every = 80
let max_sync_attempts = 50
let fit_wait_every = 40

let create ?duplicate ?fault ?reliable ?(batch = Batch.unbatched) ?detector
    ?(fit = fun _ -> true) engine ~n ~latency ~rng ~deliver : 'p Rbcast.t =
  let net =
    Transport.create ?duplicate ?fault ?config:reliable engine ~n ~latency ~rng
  in
  let det =
    Detector.create ?config:detector ?fault engine ~n ~latency
      ~rng:(Rng.split rng)
  in
  let sigma epoch = epoch mod n in
  (* Event tracing for protocol debugging, gated on [HA_DEBUG]
     (formatting is skipped entirely when the variable is unset). *)
  let ha_debug = Sys.getenv_opt "HA_DEBUG" <> None in
  let dbg fmt =
    if ha_debug then
      Fmt.kstr (fun s -> Fmt.epr "[ha %d] %s@." (Engine.now engine) s) fmt
    else Format.ifprintf Format.err_formatter fmt
  in
  ignore dbg;
  let quorum = (n / 2) + 1 in
  let epochs = ref 0
  and syncs = ref 0
  and holes_total = ref 0
  and fenced_total = ref 0
  and resubmits = ref 0
  and retracted_total = ref 0 in
  let states =
    Array.init n (fun node ->
        {
          seen = Hashtbl.create 64;
          closes = Hashtbl.create 4;
          epoch = 0;
          limbo = [];
          next_oseq = 0;
          pending = Hashtbl.create 8;
          restamp = Hashtbl.create 8;
          resubmit_scheduled = false;
          resubmit_attempts = 0;
          requests = Array.init n (fun _ -> Hashtbl.create 8);
          stamped = Array.init n (fun _ -> Hashtbl.create 8);
          cursors = Array.make n 0;
          serving = node = 0;
          next_pos = 0;
          obatch = [];
          obatch_len = 0;
          obatch_epoch = 0;
          oflush_scheduled = false;
          syncing = false;
          sync_prev = 0;
          awaiting = Hashtbl.create 8;
          acked = Hashtbl.create 8;
          merged = Hashtbl.create 64;
          sync_high = 0;
          sync_attempts = 0;
          retry_scheduled = false;
        })
  in
  (* Client retry: after an epoch change (or give-up silence), re-send
     every unordered request to the current sequencer, with backoff. *)
  let rec schedule_resubmit node ~delay =
    let st = states.(node) in
    if not st.resubmit_scheduled then begin
      st.resubmit_scheduled <- true;
      Engine.schedule engine ~delay (fun () ->
          st.resubmit_scheduled <- false;
          if Hashtbl.length st.pending > 0 && st.resubmit_attempts >= max_resubmit
          then dbg "node %d resubmit GIVE-UP (%d pending)" node (Hashtbl.length st.pending);
          if
            Hashtbl.length st.pending > 0
            && st.resubmit_attempts < max_resubmit
          then begin
            st.resubmit_attempts <- st.resubmit_attempts + 1;
            let dst = sigma st.epoch in
            Hashtbl.iter
              (fun oseq payload ->
                incr resubmits;
                Transport.send net ~src:node ~dst
                  (Request { origin = node; oseq; payload }))
              st.pending;
            schedule_resubmit node ~delay:resubmit_every
          end)
    end
  in
  (* Withdraw [pos]'s stamp at [node].  When the stamp carried one of
     this node's own invocations and no other position still does, the
     payload goes back into [pending] for resubmission — a fenced
     stamp must not lose the operation (the client's continuation is
     still waiting on it). *)
  let withdraw node ~pos ~origin ~oseq =
    let st = states.(node) in
    dbg "node %d withdraws pos %d (%d,%d)" node pos origin oseq;
    Hashtbl.remove st.seen pos;
    (* A withdrawal landing while this node's own takeover sync is
       open must also fence the [merged] snapshot (taken from [seen]
       at election start): otherwise [finish_sync] rebuilds [stamped]
       from an entry whose stamp was just retracted, and the origin's
       resubmissions bounce off "already stamped" forever while no
       position carries the payload. *)
    (if st.syncing then
       match Hashtbl.find_opt st.merged pos with
       | Some (_, o0, q0) when o0 = origin && q0 = oseq ->
         Hashtbl.remove st.merged pos
       | _ -> ());
    incr retracted_total;
    deliver ~node ~origin:(-1) ~pos Rbcast.Retract;
    if origin = node && not (Hashtbl.mem st.pending oseq) then begin
      let live =
        Hashtbl.fold
          (fun _ (_, o, q) acc -> acc || (o = origin && q = oseq))
          st.seen false
      in
      if not live then
        match Hashtbl.find_opt st.restamp oseq with
        | Some payload ->
          Hashtbl.replace st.pending oseq payload;
          st.resubmit_attempts <- 0;
          schedule_resubmit node ~delay:resubmit_after
        | None -> ()
    end
  in
  (* Record [pos]'s stamping and deliver it.  A newer-epoch stamp
     supersedes an older payload stamp in place: its [New_epoch] (which
     would have retracted the old stamp first) can be overtaken on the
     reordering wire by the restamped [Ordered]. *)
  let accept node ~epoch ~pos ~origin ~oseq payload =
    let st = states.(node) in
    (match Hashtbl.find_opt st.seen pos with
    | Some (e0, o0, q0) when e0 < epoch && o0 >= 0 ->
      withdraw node ~pos ~origin:o0 ~oseq:q0
    | _ -> ());
    if not (Hashtbl.mem st.seen pos) then begin
      Hashtbl.replace st.seen pos (epoch, origin, oseq);
      if origin = node then begin
        Hashtbl.replace st.restamp oseq payload;
        Hashtbl.remove st.pending oseq;
        st.resubmit_attempts <- 0
      end;
      deliver ~node ~origin ~pos (Rbcast.Payload payload)
    end
  in
  (* The close governing stale epoch [e]: the earliest learned close
     whose covered range [(prev, epoch)] contains [e]. *)
  let covering_close st e =
    Hashtbl.fold
      (fun ce (c : close) best ->
        if c.prev <= e && e < ce then
          match best with Some (be, _) when be <= ce -> best | _ -> Some (ce, c)
        else best)
      st.closes None
  in
  (* Resolve an Ordered message stamped in a since-closed epoch: valid
     iff it fits below the covering close's base and the position is
     not already seen (fenced holes live in [seen]). *)
  let resolve_stale node ~epoch ~pos ~origin ~oseq payload =
    let st = states.(node) in
    match covering_close st epoch with
    | None -> st.limbo <- (epoch, pos, origin, oseq, payload) :: st.limbo
    | Some (_, c) ->
      if pos < c.base && not (Hashtbl.mem states.(node).seen pos) then
        accept node ~epoch ~pos ~origin ~oseq payload
      else incr fenced_total
  in
  let learn_close node ~epoch ~prev ~base ~holes =
    let st = states.(node) in
    if not (Hashtbl.mem st.closes epoch) then begin
      Hashtbl.replace st.closes epoch { base; holes; prev };
      List.iter
        (fun h ->
          match Hashtbl.find_opt st.seen h with
          | Some (e0, o0, q0) when e0 < epoch && o0 >= 0 ->
            (* an orphaned stamp the quorum never saw: withdraw it,
               then fence the position *)
            withdraw node ~pos:h ~origin:o0 ~oseq:q0;
            Hashtbl.replace st.seen h (epoch, -1, -1);
            deliver ~node ~origin:(-1) ~pos:h Rbcast.Hole
          | Some _ -> ()
          | None ->
            Hashtbl.replace st.seen h (epoch, -1, -1);
            deliver ~node ~origin:(-1) ~pos:h Rbcast.Hole)
        holes;
      (* The new epoch renumbers from [base]: older-epoch stamps at or
         above it are dead — withdraw them; their payloads come back
         restamped (the origins resubmit anything unstamped). *)
      let orphans =
        Hashtbl.fold
          (fun pos (e0, o0, q0) acc ->
            if pos >= base && e0 < epoch && o0 >= 0 then (pos, o0, q0) :: acc
            else acc)
          st.seen []
      in
      List.iter
        (fun (pos, o0, q0) -> withdraw node ~pos ~origin:o0 ~oseq:q0)
        (List.sort compare orphans);
      let limbo = st.limbo in
      st.limbo <- [];
      List.iter
        (fun (e, pos, origin, oseq, payload) ->
          resolve_stale node ~epoch:e ~pos ~origin ~oseq payload)
        limbo
    end
  in
  let node_up node =
    match fault with
    | None -> true
    | Some f -> Fault.node_up f ~now:(Engine.now engine) ~node
  in
  (* Flush the outgoing stamp batch as one [Ordered] wire message.
     The message carries the epoch the items were stamped under
     ([obatch_epoch], not the possibly-since-advanced [st.epoch]):
     queued stamps survive an epoch change on the wire exactly as
     eagerly-sent ones would, to be fenced or accepted by the close
     protocol like any other in-flight message.

     A flush timer firing while the node is down must NOT transmit:
     the queue is volatile state the crash destroyed.  Handing it to
     the reliable channel here would resurrect it after the restart —
     retransmissions would push wiped-epoch stamps into the new
     world, the owner's [seen] would claim positions whose payload no
     quorum member holds, and the next takeover sync would merge them
     as non-holes every replica then waits on forever.  Discarding
     matches the unbatched wire, where the same stamps would have
     been dropped at send time ([Crashed_src]); the origins resubmit
     against the next epoch. *)
  let flush_batch node =
    let st = states.(node) in
    if st.obatch_len > 0 then
      if not (node_up node) then begin
        dbg "node %d DISCARDS %d queued items epoch %d (down)" node
          st.obatch_len st.obatch_epoch;
        st.obatch <- [];
        st.obatch_len <- 0
      end
      else begin
        dbg "node %d flush %d items epoch %d" node st.obatch_len st.obatch_epoch;
        let items = List.rev st.obatch in
        let epoch = st.obatch_epoch in
        st.obatch <- [];
        st.obatch_len <- 0;
        Transport.send_all net ~src:node (Ordered { epoch; items })
      end
  in
  let schedule_oflush node =
    let st = states.(node) in
    if not st.oflush_scheduled then begin
      st.oflush_scheduled <- true;
      let fire () =
        st.oflush_scheduled <- false;
        flush_batch node
      in
      if batch.Batch.flush_every <= 0 then Engine.schedule_now engine fire
      else Engine.schedule engine ~delay:batch.Batch.flush_every fire
    end
  in
  let enqueue_stamp node ~pos ~origin ~oseq payload =
    let st = states.(node) in
    (* A stale queue from a previous epoch should have been flushed at
       the transition; flush defensively rather than mix epochs. *)
    if st.obatch_len > 0 && st.obatch_epoch <> st.epoch then flush_batch node;
    if st.obatch_len = 0 then st.obatch_epoch <- st.epoch;
    st.obatch <- (pos, origin, oseq, payload) :: st.obatch;
    st.obatch_len <- st.obatch_len + 1;
    if st.obatch_len >= batch.Batch.size then flush_batch node
    else schedule_oflush node
  in
  (* Sequencer: stamp origin's requests in oseq order, skipping oseqs
     already stamped (learned from the takeover sync). *)
  let rec stamp_loop node origin =
    let st = states.(node) in
    if st.serving then
      let c = st.cursors.(origin) in
      if Hashtbl.mem st.stamped.(origin) c then begin
        Hashtbl.remove st.requests.(origin) c;
        st.cursors.(origin) <- c + 1;
        stamp_loop node origin
      end
      else
        match Hashtbl.find_opt st.requests.(origin) c with
        | None -> ()
        | Some payload ->
          Hashtbl.remove st.requests.(origin) c;
          Hashtbl.replace st.stamped.(origin) c ();
          st.cursors.(origin) <- c + 1;
          let pos = st.next_pos in
          st.next_pos <- pos + 1;
          enqueue_stamp node ~pos ~origin ~oseq:c payload;
          stamp_loop node origin
  in
  let finish_sync node =
    let st = states.(node) in
    st.syncing <- false;
    let base = st.sync_high in
    let holes = ref [] in
    for pos = base - 1 downto 0 do
      if not (Hashtbl.mem st.merged pos) then holes := pos :: !holes
    done;
    let holes = !holes in
    holes_total := !holes_total + List.length holes;
    Array.iter Hashtbl.reset st.stamped;
    Hashtbl.iter
      (fun _pos (_e, origin, oseq) ->
        if origin >= 0 then Hashtbl.replace st.stamped.(origin) oseq ())
      st.merged;
    for o = 0 to n - 1 do
      let c = ref 0 in
      while Hashtbl.mem st.stamped.(o) !c do
        incr c
      done;
      st.cursors.(o) <- !c
    done;
    st.next_pos <- base;
    dbg "node %d forms epoch %d base %d holes %d" node st.epoch base
      (List.length holes);
    st.serving <- true;
    incr syncs;
    incr epochs;
    learn_close node ~epoch:st.epoch ~prev:st.sync_prev ~base ~holes;
    Transport.send_all net ~src:node
      (New_epoch { epoch = st.epoch; prev = st.sync_prev; base; holes });
    for o = 0 to n - 1 do
      stamp_loop node o
    done
  in
  (* Timer retries are capped, but the election itself never gives up:
     unsuspicion edges re-add peers and re-poll, so a sync stalled by
     a partition resumes when the partition heals. *)
  let rec maybe_finish node =
    let st = states.(node) in
    if st.syncing && Hashtbl.length st.awaiting = 0 then
      if 1 + Hashtbl.length st.acked >= quorum then finish_sync node
      else schedule_sync_retry node
  and schedule_sync_retry node =
    let st = states.(node) in
    if
      st.syncing && (not st.retry_scheduled)
      && st.sync_attempts < max_sync_attempts
    then begin
      st.retry_scheduled <- true;
      st.sync_attempts <- st.sync_attempts + 1;
      Engine.schedule engine ~delay:sync_retry_every (fun () ->
          st.retry_scheduled <- false;
          if st.syncing then begin
            for peer = 0 to n - 1 do
              if
                peer <> node
                && (not (Hashtbl.mem st.acked peer))
                && not (Detector.suspects det ~observer:node ~subject:peer)
              then begin
                Hashtbl.replace st.awaiting peer ();
                Transport.send net ~src:node ~dst:peer
                  (Sync_req { epoch = st.epoch })
              end
            done;
            maybe_finish node
          end)
    end
  in
  let start_sync node =
    let st = states.(node) in
    (* Queued stamps must not die with the epoch: push them onto the
       wire (under their stamping epoch) before the takeover begins —
       the pinned batch regression test exercises exactly this. *)
    flush_batch node;
    st.serving <- false;
    Hashtbl.reset st.awaiting;
    Hashtbl.reset st.acked;
    Hashtbl.reset st.merged;
    Hashtbl.iter (fun pos stamp -> Hashtbl.replace st.merged pos stamp) st.seen;
    st.sync_high <- Hashtbl.fold (fun pos _ hi -> max hi (pos + 1)) st.seen 0;
    for peer = 0 to n - 1 do
      if peer <> node && not (Detector.suspects det ~observer:node ~subject:peer)
      then Hashtbl.replace st.awaiting peer ()
    done;
    Hashtbl.iter
      (fun peer () ->
        Transport.send net ~src:node ~dst:peer (Sync_req { epoch = st.epoch }))
      st.awaiting;
    maybe_finish node
  in
  (* The highest epoch this node knows actually formed: it stamped a
     position or closed.  Epoch numbers themselves are no evidence —
     elections race through epochs that never form — and a close must
     anchor its coverage at a formed epoch or stale messages from the
     last formed one are left uncovered forever. *)
  let last_formed st =
    let f = Hashtbl.fold (fun e _ acc -> max acc e) st.closes 0 in
    Hashtbl.fold (fun _ (e, _, _) acc -> max acc e) st.seen f
  in
  (* A candidate vetoed by [fit] (the store holds off replicas with
     quarantined log positions) polls again on a daemon timer until it
     is repaired — or until the conditions it re-checks have moved on
     (a higher epoch adopted, suspicion changed). *)
  let fit_wait = Array.make n false in
  let await_fit node retry =
    if not fit_wait.(node) then begin
      fit_wait.(node) <- true;
      Engine.schedule ~daemon:true engine ~delay:fit_wait_every (fun () ->
          fit_wait.(node) <- false;
          retry node)
    end
  in
  (* Elect when this node is the smallest id it does not suspect and
     the current epoch belongs to someone else: claim the smallest
     owned epoch above the current one.  Racing candidates therefore
     claim distinct epochs and the lowest-id candidate the lowest. *)
  let rec try_elect node =
    let st = states.(node) in
    if
      (not st.syncing)
      && Detector.candidate det ~observer:node = node
      && sigma st.epoch <> node
    then begin
      if not (fit node) then begin
        dbg "node %d elect deferred: unfit (quarantined)" node;
        await_fit node try_elect
      end
      else begin
        let rec next e = if sigma e = node then e else next (e + 1) in
        let e = next (st.epoch + 1) in
        st.sync_prev <- last_formed st;
        dbg "node %d elects epoch %d" node e;
        st.epoch <- e;
        st.syncing <- true;
        st.sync_attempts <- 0;
        start_sync node
      end
    end
  in
  (* Rejoin after a crash while still holding the epoch: deposed in
     absentia or not, the node must re-form through a fresh quorum sync
     before serving again.  If its recovered log came back quarantined
     it is unfit to sequence — wait for repair (peers depose it through
     higher epochs in the meantime, at which point [try_elect] takes
     over the retrying). *)
  let rec rejoin_elect node =
    let st = states.(node) in
    if sigma st.epoch = node && not st.syncing then begin
      if not (fit node) then begin
        dbg "node %d rejoin deferred: unfit (quarantined)" node;
        await_fit node rejoin_elect
      end
      else begin
        let rec next e = if sigma e = node then e else next (e + 1) in
        let e = next (st.epoch + 1) in
        st.sync_prev <- last_formed st;
        st.epoch <- e;
        st.syncing <- true;
        st.sync_attempts <- 0;
        start_sync node
      end
    end
  in
  (* Move to a higher epoch learned from the wire: stop serving (and
     abandon any own election it outbids), then reconsider leadership
     — a restarted low id reclaims the sequencer role from here. *)
  let adopt node epoch =
    let st = states.(node) in
    dbg "node %d adopt epoch %d (was %d, pending %d)" node epoch st.epoch
      (Hashtbl.length st.pending);
    flush_batch node;
    st.epoch <- epoch;
    st.serving <- false;
    st.syncing <- false;
    if Hashtbl.length st.pending > 0 then begin
      st.resubmit_attempts <- 0;
      schedule_resubmit node ~delay:resubmit_after
    end;
    try_elect node
  in
  Detector.on_change det (fun ~observer ~subject ~suspected ->
      let st = states.(observer) in
      if suspected then begin
        if st.syncing && Hashtbl.mem st.awaiting subject then begin
          Hashtbl.remove st.awaiting subject;
          maybe_finish observer
        end;
        try_elect observer
      end
      else begin
        if
          st.syncing
          && (not (Hashtbl.mem st.acked subject))
          && not (Hashtbl.mem st.awaiting subject)
        then begin
          Hashtbl.replace st.awaiting subject ();
          Transport.send net ~src:observer ~dst:subject
            (Sync_req { epoch = st.epoch })
        end;
        try_elect observer
      end);
  (* Crash edges, straight from the fault plan (the injector below the
     transport makes the down window itself; here we model what the
     crash does to this layer's volatile state).  Going down destroys
     the queued stamp batch — stamps that never reached the wire die
     with the process.  Coming back, a node that still believes it
     owns the current epoch must not resume serving: it may have been
     deposed in absentia, and stamping on its stale state would mint
     positions no quorum member holds — ghosts the next takeover sync
     would merge as non-holes that every replica then awaits forever.
     It rejoins by claiming its next owned epoch through a fresh
     quorum sync ([merged] rebuilt from live peers, not its own
     possibly-superseded [seen]); non-owners just resubmit and relearn
     the epoch from the wire. *)
  (match fault with
  | None -> ()
  | Some f ->
    List.iter
      (fun (c : Fault.crash) ->
        Engine.at engine ~time:c.at (fun () ->
            let st = states.(c.node) in
            st.obatch <- [];
            st.obatch_len <- 0);
        Engine.at engine ~time:c.back (fun () ->
            let st = states.(c.node) in
            if sigma st.epoch = c.node then begin
              dbg "node %d rejoins after crash (held epoch %d)" c.node
                st.epoch;
              st.serving <- false;
              st.syncing <- false;
              rejoin_elect c.node
            end;
            if Hashtbl.length st.pending > 0 then begin
              st.resubmit_attempts <- 0;
              schedule_resubmit c.node ~delay:resubmit_after
            end))
      (Fault.plan f).Fault.crashes);
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun src msg ->
        let st = states.(node) in
        match msg with
        | Request { origin; oseq; payload } ->
          (* Stale routing (sequencer changed while in flight) is
             dropped; the origin resubmits against the new epoch.  A
             syncing candidate buffers and stamps after takeover. *)
          if sigma st.epoch = node then
            if not (Hashtbl.mem st.stamped.(origin) oseq) then begin
              if oseq >= st.cursors.(origin) then
                Hashtbl.replace st.requests.(origin) oseq payload
              else
                dbg "node %d IGNORES request (%d,%d): cursor %d" node origin
                  oseq st.cursors.(origin);
              if st.serving then stamp_loop node origin
            end
            else dbg "node %d skips stamped request (%d,%d)" node origin oseq
        | Ordered { epoch; items } ->
          if epoch > st.epoch then adopt node epoch;
          List.iter
            (fun (pos, origin, oseq, payload) ->
              if epoch >= st.epoch then
                accept node ~epoch ~pos ~origin ~oseq payload
              else resolve_stale node ~epoch ~pos ~origin ~oseq payload)
            items
        | Sync_req { epoch } ->
          if epoch > st.epoch then adopt node epoch;
          if epoch = st.epoch then begin
            let held =
              Hashtbl.fold
                (fun pos (e, origin, oseq) acc -> (pos, e, origin, oseq) :: acc)
                st.seen []
            in
            let high =
              Hashtbl.fold (fun pos _ hi -> max hi (pos + 1)) st.seen 0
            in
            Transport.send net ~src:node ~dst:src
              (Sync_ack { epoch; node; held; high })
          end
        | Sync_ack { epoch; node = peer; held; high } ->
          if epoch = st.epoch && st.syncing && Hashtbl.mem st.awaiting peer
          then begin
            Hashtbl.remove st.awaiting peer;
            Hashtbl.replace st.acked peer ();
            List.iter
              (fun (pos, e, origin, oseq) ->
                match Hashtbl.find_opt st.merged pos with
                | Some (e0, _, _) when e0 >= e -> ()
                | _ -> Hashtbl.replace st.merged pos (e, origin, oseq))
              held;
            st.sync_high <- max st.sync_high high;
            maybe_finish node
          end
        | New_epoch { epoch; prev; base; holes } ->
          if epoch > st.epoch then adopt node epoch;
          learn_close node ~epoch ~prev ~base ~holes)
  done;
  {
    Rbcast.name = "ha-sequencer";
    broadcast =
      (fun ~src payload ->
        let st = states.(src) in
        let oseq = st.next_oseq in
        st.next_oseq <- oseq + 1;
        Hashtbl.replace st.pending oseq payload;
        dbg "node %d bcast oseq %d -> seq %d (epoch %d)" src oseq
          (sigma st.epoch) st.epoch;
        Transport.send net ~src ~dst:(sigma st.epoch)
          (Request { origin = src; oseq; payload });
        schedule_resubmit src ~delay:(resubmit_after + resubmit_every));
    messages_sent = (fun () -> Transport.messages_sent net);
    stats =
      (fun () ->
        {
          Rbcast.epochs = !epochs;
          syncs = !syncs;
          holes = !holes_total;
          fenced = !fenced_total;
          resubmits = !resubmits;
          retracted = !retracted_total;
        });
    detector_stats = (fun () -> Some (Detector.stats det));
  }

let factory : 'p Rbcast.factory = create
