(** Recoverable atomic broadcast: total-order delivery tagged with
    global positions.

    The plain {!Abcast} interface delivers payloads in order at each
    node and leaves the position implicit.  Crash recovery needs it
    explicit: a write-ahead log keys entries by position, a rejoining
    replica asks peers for "everything from position [H]", and a
    sequencer epoch change can fence a position off as a {e hole}
    that every replica skips.  A recoverable broadcast therefore
    delivers [(pos, payload option)] — [None] marks a hole — with
    exactly-once-per-position discipline but {e no ordering
    guarantee}: positions may arrive out of order (catch-up, fencing,
    retransmission) and the store sequences them with its own cursor.

    Two implementations: {!Ha_sequencer} (epoch-numbered sequencers
    with deterministic failover) and {!of_abcast} over the Lamport
    broadcast (whose intrinsic delivery order provides positions). *)

type stats = {
  epochs : int;  (** view changes executed *)
  syncs : int;  (** takeover sync rounds completed *)
  holes : int;  (** positions fenced as holes at epoch changes *)
  fenced : int;  (** stale sequencer messages discarded *)
  resubmits : int;  (** client requests re-sent to a new epoch *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type 'p t = {
  name : string;
  broadcast : src:int -> 'p -> unit;
  messages_sent : unit -> int;
  stats : unit -> stats;
}

val broadcast : 'p t -> src:int -> 'p -> unit
val messages_sent : 'p t -> int
val name : 'p t -> string
val stats : 'p t -> stats

(** [deliver ~node ~origin ~pos payload] is invoked at most once per
    [(node, pos)]; [payload = None] is a hole the store must skip.
    Positions can arrive in any order. *)
type 'p factory =
  ?duplicate:float ->
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  Mmc_sim.Engine.t ->
  n:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  deliver:(node:int -> origin:int -> pos:int -> 'p option -> unit) ->
  'p t

(** Lift a plain atomic broadcast by numbering each node's delivery
    sequence (positions arrive in order, holes never occur). *)
val of_abcast : 'p Abcast.factory -> 'p factory
