(** Recoverable atomic broadcast: total-order delivery tagged with
    global positions.

    The plain {!Abcast} interface delivers payloads in order at each
    node and leaves the position implicit.  Crash recovery needs it
    explicit: a write-ahead log keys entries by position, a rejoining
    replica asks peers for "everything from position [H]", and a
    sequencer epoch change can fence a position off as a {e hole}
    that every replica skips.  A recoverable broadcast therefore
    delivers [(pos, delivery)] with exactly-once-per-{e current}-
    stamping discipline but {e no ordering guarantee}: positions may
    arrive out of order (catch-up, fencing, retransmission) and the
    store sequences them with its own cursor.

    Deliveries are three-valued.  [Payload p] assigns [p] to the
    position.  [Hole] fences the position off — every replica skips
    it.  [Retract] withdraws an earlier [Payload]/[Hole] delivery for
    the position: an epoch change can orphan a stamp that was never
    quorum-stable (the new sequencer renumbers from its sync base), in
    which case the position is first retracted and later re-delivered
    under its new stamping.  A store that applies optimistically may
    have consumed the retracted stamp already — that is exactly the
    §12 anomaly; a quorum-stable store never applies a retractable
    position.

    Two implementations: {!Ha_sequencer} (epoch-numbered sequencers
    with suspicion-driven failover) and {!of_abcast} over the Lamport
    broadcast (whose intrinsic delivery order provides positions;
    holes and retractions never occur). *)

type stats = {
  epochs : int;  (** epoch changes completed (takeovers that formed) *)
  syncs : int;  (** takeover sync rounds completed *)
  holes : int;  (** positions fenced as holes at epoch changes *)
  fenced : int;  (** stale sequencer messages discarded *)
  resubmits : int;  (** client requests re-sent to a new epoch *)
  retracted : int;  (** orphaned stamps withdrawn at epoch changes *)
}

val zero_stats : stats
val pp_stats : Format.formatter -> stats -> unit

type 'p delivery =
  | Payload of 'p  (** the position's (current) stamped payload *)
  | Hole  (** position fenced at an epoch change — skip it *)
  | Retract  (** withdraw this position's earlier delivery *)

type 'p t = {
  name : string;
  broadcast : src:int -> 'p -> unit;
  messages_sent : unit -> int;
  stats : unit -> stats;
  detector_stats : unit -> Mmc_sim.Detector.stats option;
      (** failure-detector counters when the implementation runs one *)
}

val broadcast : 'p t -> src:int -> 'p -> unit
val messages_sent : 'p t -> int
val name : 'p t -> string
val stats : 'p t -> stats
val detector_stats : 'p t -> Mmc_sim.Detector.stats option

(** [deliver ~node ~origin ~pos d] is invoked at most once per
    [(node, pos)] {e per stamping}: a position is re-delivered only
    after an intervening [Retract] (or to override a stale stamp with
    [Hole]).  [origin] is [-1] for [Hole]/[Retract].  Positions can
    arrive in any order.  [detector] configures the failure detector
    of implementations that elect (ignored by the rest).  [fit node]
    vetoes takeover by an unfit candidate — the store passes a
    predicate that holds off replicas with quarantined (damaged,
    unrepaired) log positions; implementations that elect retry until
    the candidate becomes fit or suspicion moves on.  Default: everyone
    is fit. *)
type 'p factory =
  ?duplicate:float ->
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Batch.t ->
  ?detector:Mmc_sim.Detector.config ->
  ?fit:(int -> bool) ->
  Mmc_sim.Engine.t ->
  n:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  deliver:(node:int -> origin:int -> pos:int -> 'p delivery -> unit) ->
  'p t

(** Lift a plain atomic broadcast by numbering each node's delivery
    sequence (positions arrive in order; holes and retractions never
    occur). *)
val of_abcast : 'p Abcast.factory -> 'p factory
