(** Fixed-sequencer atomic broadcast.

    Node 0 doubles as the sequencer: a sender forwards its payload to
    the sequencer, which stamps it with the next global sequence number
    and fans it out to every node; receivers buffer out-of-order
    sequence numbers and deliver in sequence.  2 message hops end to
    end; n+1 transport messages per broadcast.

    Duplicate tolerance: requests carry a per-origin sequence number so
    the sequencer stamps each broadcast once; receivers drop ordered
    messages below their delivery cursor. *)

open Mmc_sim

type 'p msg =
  | To_sequencer of { origin : int; origin_seq : int; payload : 'p }
  | Ordered of { seq : int; origin : int; payload : 'p }

let sequencer_node = 0

let create ?duplicate ?fault ?reliable engine ~n ~latency ~rng ~deliver :
    'p Abcast.t =
  let net =
    Transport.create ?duplicate ?fault ?config:reliable engine ~n ~latency ~rng
  in
  let next_seq = ref 0 in
  (* Sequencer-side per-origin cursor and reorder buffer: requests are
     stamped in origin_seq order, duplicates (below the cursor) are
     dropped.  This also makes the sequencer FIFO per sender. *)
  let stamped = Array.make n 0 in
  let requests : (int, 'p) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in
  (* Sender-side request numbering. *)
  let origin_seqs = Array.make n 0 in
  (* Per-node delivery cursor and out-of-order buffer. *)
  let expected = Array.make n 0 in
  let buffered : (int, int * 'p) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src msg ->
        match msg with
        | To_sequencer { origin; origin_seq; payload } ->
          assert (node = sequencer_node);
          if origin_seq >= stamped.(origin) then
            Hashtbl.replace requests.(origin) origin_seq payload;
          let rec stamp () =
            match Hashtbl.find_opt requests.(origin) stamped.(origin) with
            | None -> ()
            | Some payload ->
              Hashtbl.remove requests.(origin) stamped.(origin);
              stamped.(origin) <- stamped.(origin) + 1;
              let seq = !next_seq in
              incr next_seq;
              Transport.send_all net ~src:node (Ordered { seq; origin; payload });
              stamp ()
          in
          stamp ()
        | Ordered { seq; origin; payload } ->
          if seq >= expected.(node) then
            Hashtbl.replace buffered.(node) seq (origin, payload);
          let rec drain () =
            match Hashtbl.find_opt buffered.(node) expected.(node) with
            | None -> ()
            | Some (origin, payload) ->
              Hashtbl.remove buffered.(node) expected.(node);
              expected.(node) <- expected.(node) + 1;
              deliver ~node ~origin payload;
              drain ()
          in
          drain ())
  done;
  {
    Abcast.name = "sequencer";
    broadcast =
      (fun ~src payload ->
        let origin_seq = origin_seqs.(src) in
        origin_seqs.(src) <- origin_seq + 1;
        Transport.send net ~src ~dst:sequencer_node
          (To_sequencer { origin = src; origin_seq; payload }));
    messages_sent = (fun () -> Transport.messages_sent net);
  }
