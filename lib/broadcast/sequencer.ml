(** Fixed-sequencer atomic broadcast.

    Node 0 doubles as the sequencer: a sender forwards its payload to
    the sequencer, which stamps it with the next global sequence number
    and fans it out to every node; receivers buffer out-of-order
    sequence numbers and deliver in sequence.  2 message hops end to
    end; n+1 transport messages per broadcast unbatched.

    Batching ({!Batch}): sequence numbers are assigned the moment a
    request reaches the stamping cursor — batching never reorders —
    but the stamped [(origin, payload)] items are queued and one
    [Ordered] wire message carries up to [Batch.size] of them, flushed
    early when a partial batch ages past [Batch.flush_every].  One
    fan-out (n messages flat, n-1 down a tree) is thus amortized over
    the whole batch: per-broadcast cost drops from n+1 towards
    1 + n/size.

    Tree dissemination ([Batch.fanout >= 1]): the sequencer sends each
    batch to its children in the complete [fanout]-ary tree rooted at
    itself and every receiver forwards to its own children before
    delivering, so the root's egress is [fanout] messages per batch
    instead of n.  Forwarding happens on every receipt; the tree is
    acyclic, so at-least-once links re-forward finitely and the
    per-seq delivery cursor suppresses the duplicates.  Loss on a tree
    edge is masked by the reliable ack/retransmit transport exactly as
    for the flat fan-out.

    Duplicate tolerance: requests carry a per-origin sequence number so
    the sequencer stamps each broadcast once; receivers drop ordered
    messages below their delivery cursor. *)

open Mmc_sim

type 'p msg =
  | To_sequencer of { origin : int; origin_seq : int; payload : 'p }
  | Ordered of { base : int; items : (int * 'p) list }
      (** item [i] is [(origin, payload)] for global sequence
          [base + i] *)

let sequencer_node = 0

let create ?duplicate ?fault ?reliable ?(batch = Batch.unbatched) engine ~n
    ~latency ~rng ~deliver : 'p Abcast.t =
  let net =
    Transport.create ?duplicate ?fault ?config:reliable engine ~n ~latency ~rng
  in
  let fanout = batch.Batch.fanout in
  let next_seq = ref 0 in
  (* Sequencer-side per-origin cursor and reorder buffer: requests are
     stamped in origin_seq order, duplicates (below the cursor) are
     dropped.  This also makes the sequencer FIFO per sender. *)
  let stamped = Array.make n 0 in
  let requests : (int, 'p) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 8)
  in
  (* Sender-side request numbering. *)
  let origin_seqs = Array.make n 0 in
  (* Per-node delivery cursor and out-of-order buffer. *)
  let expected = Array.make n 0 in
  let buffered : (int, int * 'p) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  (* Outgoing batch (sequencer side): stamped items awaiting the next
     flush, newest first, with the global sequence of the oldest. *)
  let queue = ref [] in
  let queue_len = ref 0 in
  let queue_base = ref 0 in
  let flush_scheduled = ref false in
  let receive node ~base items =
    if fanout > 0 then
      List.iter
        (fun child ->
          Transport.send net ~src:node ~dst:child (Ordered { base; items }))
        (Batch.children ~fanout ~n ~root:sequencer_node ~node);
    List.iteri
      (fun i (origin, payload) ->
        let seq = base + i in
        if seq >= expected.(node) then
          Hashtbl.replace buffered.(node) seq (origin, payload))
      items;
    let rec drain () =
      match Hashtbl.find_opt buffered.(node) expected.(node) with
      | None -> ()
      | Some (origin, payload) ->
        Hashtbl.remove buffered.(node) expected.(node);
        expected.(node) <- expected.(node) + 1;
        deliver ~node ~origin payload;
        drain ()
    in
    drain ()
  in
  let flush () =
    if !queue_len > 0 then begin
      let items = List.rev !queue in
      let base = !queue_base in
      queue := [];
      queue_len := 0;
      if fanout > 0 then
        (* The root delivers its own copy locally and pays only
           [fanout] egress messages. *)
        receive sequencer_node ~base items
      else Transport.send_all net ~src:sequencer_node (Ordered { base; items })
    end
  in
  let schedule_flush () =
    if not !flush_scheduled then begin
      flush_scheduled := true;
      let fire () =
        flush_scheduled := false;
        flush ()
      in
      if batch.Batch.flush_every <= 0 then Engine.schedule_now engine fire
      else Engine.schedule engine ~delay:batch.Batch.flush_every fire
    end
  in
  let enqueue origin payload =
    let seq = !next_seq in
    incr next_seq;
    if !queue_len = 0 then queue_base := seq;
    queue := (origin, payload) :: !queue;
    incr queue_len;
    if !queue_len >= batch.Batch.size then flush () else schedule_flush ()
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun _src msg ->
        match msg with
        | To_sequencer { origin; origin_seq; payload } ->
          assert (node = sequencer_node);
          if origin_seq >= stamped.(origin) then
            Hashtbl.replace requests.(origin) origin_seq payload;
          let rec stamp () =
            match Hashtbl.find_opt requests.(origin) stamped.(origin) with
            | None -> ()
            | Some payload ->
              Hashtbl.remove requests.(origin) stamped.(origin);
              stamped.(origin) <- stamped.(origin) + 1;
              enqueue origin payload;
              stamp ()
          in
          stamp ()
        | Ordered { base; items } -> receive node ~base items)
  done;
  {
    Abcast.name = "sequencer";
    broadcast =
      (fun ~src payload ->
        let origin_seq = origin_seqs.(src) in
        origin_seqs.(src) <- origin_seq + 1;
        Transport.send net ~src ~dst:sequencer_node
          (To_sequencer { origin = src; origin_seq; payload }));
    messages_sent = (fun () -> Transport.messages_sent net);
  }
