(** Instantiate an atomic broadcast by implementation selector. *)

let factory (impl : Abcast.impl) : 'p Abcast.factory =
  match impl with
  | Abcast.Sequencer_impl -> Sequencer.create
  | Abcast.Lamport_impl -> Lamport.create

let recoverable (impl : Abcast.impl) : 'p Rbcast.factory =
  match impl with
  | Abcast.Sequencer_impl -> Ha_sequencer.create
  | Abcast.Lamport_impl -> Rbcast.of_abcast Lamport.create
