(** Recoverable atomic broadcast: position-tagged total-order delivery
    (see the interface). *)

type stats = {
  epochs : int;
  syncs : int;
  holes : int;
  fenced : int;
  resubmits : int;
  retracted : int;
}

let zero_stats =
  { epochs = 0; syncs = 0; holes = 0; fenced = 0; resubmits = 0; retracted = 0 }

let pp_stats ppf s =
  Fmt.pf ppf "epochs %d, syncs %d, holes %d, fenced %d, resubmits %d, retracted %d"
    s.epochs s.syncs s.holes s.fenced s.resubmits s.retracted

type 'p delivery = Payload of 'p | Hole | Retract

type 'p t = {
  name : string;
  broadcast : src:int -> 'p -> unit;
  messages_sent : unit -> int;
  stats : unit -> stats;
  detector_stats : unit -> Mmc_sim.Detector.stats option;
}

let broadcast t ~src payload = t.broadcast ~src payload
let messages_sent t = t.messages_sent ()
let name t = t.name
let stats t = t.stats ()
let detector_stats t = t.detector_stats ()

type 'p factory =
  ?duplicate:float ->
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Batch.t ->
  ?detector:Mmc_sim.Detector.config ->
  ?fit:(int -> bool) ->
  Mmc_sim.Engine.t ->
  n:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  deliver:(node:int -> origin:int -> pos:int -> 'p delivery -> unit) ->
  'p t

(* Adapt a plain atomic broadcast: its per-node delivery order is the
   total order, so the delivery count at each node IS the global
   position.  The numbering must survive wipe-crashes along with the
   underlying implementation's ordering state (a persistent-logical-
   clock discipline); only the store's object state is volatile.
   Positions are final on delivery — no holes, no retractions, no
   failure detector. *)
let of_abcast (f : 'p Abcast.factory) : 'p factory =
 fun ?duplicate ?fault ?reliable ?batch ?detector:_ ?fit:_ engine ~n ~latency
     ~rng ~deliver ->
  let counts = Array.make n 0 in
  let ab =
    f ?duplicate ?fault ?reliable ?batch engine ~n ~latency ~rng
      ~deliver:(fun ~node ~origin payload ->
        let pos = counts.(node) in
        counts.(node) <- pos + 1;
        deliver ~node ~origin ~pos (Payload payload))
  in
  {
    name = Abcast.name ab ^ "+pos";
    broadcast = (fun ~src payload -> Abcast.broadcast ab ~src payload);
    messages_sent = (fun () -> Abcast.messages_sent ab);
    stats = (fun () -> zero_stats);
    detector_stats = (fun () -> None);
  }
