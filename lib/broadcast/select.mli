(** Instantiate an atomic broadcast by implementation selector. *)

val factory : Abcast.impl -> 'p Abcast.factory

(** Recovery-capable variant: the sequencer maps to {!Ha_sequencer}
    (epoch failover), Lamport to {!Rbcast.of_abcast} over the plain
    protocol (ordering state treated as durable). *)
val recoverable : Abcast.impl -> 'p Rbcast.factory
