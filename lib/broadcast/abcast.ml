(** Atomic (total order) broadcast.

    The paper's protocols synchronize all update m-operations through
    atomic broadcast: every process delivers every broadcast payload,
    and all processes deliver them in the same order.  The store layer
    is parametric in the implementation; two are provided
    ({!Sequencer} and {!Lamport}).

    A value of type ['p t] is a connected broadcast instance: the
    delivery callback was fixed at creation time and [broadcast]
    injects payloads. *)

type 'p t = {
  name : string;
  broadcast : src:int -> 'p -> unit;
  messages_sent : unit -> int;
      (** transport messages used so far (for the message-complexity
          experiments) *)
}

let broadcast t ~src payload = t.broadcast ~src payload

let messages_sent t = t.messages_sent ()

let name t = t.name

(** Implementations are functions of this shape.  [duplicate] makes the
    underlying network at-least-once; both implementations suppress
    duplicates and still deliver exactly once in total order.  [fault]
    attaches a fault injector: the implementation then runs over the
    reliable ack/retransmit transport and keeps its guarantees over
    message loss, partitions and crash/recovery windows.  [batch]
    configures sequencer-side batching and tree dissemination
    ({!Batch}); the default {!Batch.unbatched} reproduces the
    pre-batching wire behaviour. *)
type 'p factory =
  ?duplicate:float ->
  ?fault:Mmc_sim.Fault.t ->
  ?reliable:Mmc_sim.Reliable.config ->
  ?batch:Batch.t ->
  Mmc_sim.Engine.t ->
  n:int ->
  latency:Mmc_sim.Latency.t ->
  rng:Mmc_sim.Rng.t ->
  deliver:(node:int -> origin:int -> 'p -> unit) ->
  'p t

(** Which implementation to instantiate (CLI/bench selector). *)
type impl = Sequencer_impl | Lamport_impl

let pp_impl ppf = function
  | Sequencer_impl -> Fmt.string ppf "sequencer"
  | Lamport_impl -> Fmt.string ppf "lamport"
