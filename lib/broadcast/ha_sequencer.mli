(** Sequencer atomic broadcast with suspicion-driven crash failover.

    Extends the fixed-sequencer protocol with {e epochs} owned by a
    rotating coordinator: epoch [e]'s sequencer is node [e mod n].  A
    node elects a new epoch when an in-band failure detector
    ({!Mmc_sim.Detector} — heartbeats, timeouts, incarnation numbers)
    leaves it the smallest id it does not suspect while the current
    epoch belongs to someone else; it claims the smallest epoch it
    owns above its current one, so racing candidates take distinct
    epochs, lowest-id-wins falls out of the numbering, and adoption is
    highest-epoch-wins.  Nothing reads the fault plan — suspicion (and
    hence failover) is driven purely by message silence, and a falsely
    suspected live sequencer is fenced by the epoch numbers, not
    assumed dead.

    On takeover the candidate freezes, polls the peers it does not
    suspect for their durable position sets ([Sync_req]/[Sync_ack]),
    and forms the epoch only once a {e majority} (itself included) has
    answered — capped timer retries plus revival on unsuspicion keep
    the election live across partitions without unbounded traffic.
    It computes [base] — one past the highest position in the merged
    quorum — and the {e holes}: positions below [base] the quorum does
    not hold.  [New_epoch {prev; base; holes}] closes every epoch in
    [(prev, e)]; receivers fence stale [Ordered] messages against the
    covering close, deliver holes as {!Rbcast.Hole}, and withdraw
    orphaned older-epoch stamps at/above [base] with {!Rbcast.Retract}
    before they are restamped.  Clients re-send unacknowledged
    requests to the new sequencer with backoff
    ({!Rbcast.stats}[.resubmits]).

    By quorum intersection, a position acknowledged by a majority of
    replicas (the store's stable-delivery rule) is present in every
    takeover sync merge, so it is never fenced or renumbered — this is
    what makes quorum-stable delivery safe, and what optimistic
    delivery forgoes (DESIGN.md §12).

    Positions are global and strictly monotone across epochs, so the
    recorded synchronization order remains a single total order over
    the whole crash-spanning history.

    Batching ({!Batch}): the serving sequencer queues stamped items
    and one [Ordered] wire message carries up to [Batch.size] of them
    (flushed after [Batch.flush_every] when partial).  Positions are
    assigned at stamping time, so batching never reorders, and the
    queue is flushed {e before} any epoch transition (election start,
    higher-epoch adoption) under the items' stamping epoch — queued
    stamps are never silently dropped; in flight they are fenced or
    accepted by the close protocol like any eagerly-sent message.
    [Batch.fanout] is ignored: failover sync polls peers directly, so
    dissemination stays flat here. *)

val create : 'p Rbcast.factory
val factory : 'p Rbcast.factory
