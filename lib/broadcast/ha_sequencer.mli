(** Sequencer atomic broadcast with crash failover.

    Extends the fixed-sequencer protocol with {e epochs}: the
    sequencer of epoch [e] is the lowest node id alive at the epoch's
    boundary instant, boundaries being exactly the crash/restart
    instants of the fault plan at which that rule changes its answer
    (the plan acts as a perfect failure detector, so every node
    switches epoch deterministically at the same virtual time).

    On takeover the new sequencer freezes, polls the live nodes for
    the positions they have seen ([Sync_req]/[Sync_ack]), and computes
    [base] — one past the highest position seen anywhere live — plus
    the {e holes}: positions below [base] that no live node holds.  It
    announces [New_epoch {base; holes}], resumes stamping at [base],
    and rebuilds its per-origin duplicate-suppression state from the
    merged acks.  Receivers fence the old epoch against that close:
    a stale [Ordered] is accepted iff its position is below the base
    of the {e immediately} following epoch and not a hole; holes are
    delivered as [None] no-ops so position sequences stay contiguous.
    Clients re-send unacknowledged requests to the new sequencer with
    backoff ({!Rbcast.stats}[.resubmits]).

    Positions are global and strictly monotone across epochs, so the
    recorded synchronization order remains a single total order over
    the whole crash-spanning history. *)

val create : 'p Rbcast.factory
val factory : 'p Rbcast.factory
