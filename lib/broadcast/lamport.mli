(** Decentralized atomic broadcast via Lamport clocks.

    Flat mode ([Batch.fanout = 0], ISIS style): timestamped data to
    all over FIFO channels, all-to-all acknowledgements; deliver the
    minimum pending (timestamp, origin) once a larger timestamp has
    been heard from every node.  1 data hop plus stability wait,
    n + n² messages per broadcast.

    Tree mode ([Batch.fanout >= 1]): two-phase timestamp agreement
    (Skeen's algorithm) over the [fanout]-ary tree rooted at each
    message's origin — data down, one aggregated proposal per subtree
    up, the final (maximum) timestamp down.  3(n-1) messages per
    broadcast, no n² term; delivery order is the total order of final
    timestamps.  [Batch.size]/[flush_every] do not apply (senders are
    decentralized; there is no stamping queue to batch). *)

val create : 'p Abcast.factory

val factory : 'p Abcast.factory
