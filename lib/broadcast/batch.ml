(** Batching and dissemination knobs for the broadcast layer.

    [size] and [flush_every] control sequencer-side batching: stamped
    updates are queued and one [Ordered] wire message carries up to
    [size] of them; a partial batch is flushed [flush_every] time
    units after its first entry ([0] = at the end of the current
    simulation instant).  Batching changes only the message framing —
    sequence numbers are assigned on request arrival, before queueing
    — so the delivered total order is exactly the unbatched one.

    [fanout] selects tree dissemination: [0] keeps the flat fan-out
    ([send_all] from the stamping node), [f >= 1] disseminates along a
    complete [f]-ary tree rooted at the stamping node (the sequencer,
    or the origin for the decentralized broadcast), each receiver
    forwarding to its children.  The tree reduces the root's egress
    from [n - 1] to [f] messages per batch and, for the decentralized
    broadcast, replaces the all-to-all acknowledgement storm with a
    convergecast up the same tree (see {!Lamport}). *)

type t = {
  size : int;  (** max updates per [Ordered] wire message (>= 1) *)
  flush_every : int;
      (** flush a partial batch this long after its first entry;
          [0] = at the end of the current simulation instant *)
  fanout : int;  (** [0] = flat [send_all]; [f >= 1] = [f]-ary tree *)
}

let unbatched = { size = 1; flush_every = 0; fanout = 0 }

let make ?(size = 1) ?(flush_every = 0) ?(fanout = 0) () =
  if size < 1 then invalid_arg "Batch.make: size must be >= 1";
  if flush_every < 0 then invalid_arg "Batch.make: flush_every must be >= 0";
  if fanout < 0 then invalid_arg "Batch.make: fanout must be >= 0";
  { size; flush_every; fanout }

(** No batching and no tree: the wire behaviour (message counts,
    timing) is the pre-batching one. *)
let is_trivial b = b.size <= 1 && b.fanout <= 0

let pp ppf b =
  Fmt.pf ppf "batch(size %d, flush %d, fanout %d)" b.size b.flush_every
    b.fanout

(* The tree is the complete [fanout]-ary tree over ranks
   [0 .. n - 1], rank 0 = [root], node of rank [r] =
   [(root + r) mod n].  Rotating by the root keeps one static shape
   per (n, fanout) while letting any node be the root (the
   decentralized broadcast roots each message at its origin). *)

let rank ~n ~root node = (node - root + n) mod n

let of_rank ~n ~root r = (root + r) mod n

(** Children of [node] in the [fanout]-ary tree rooted at [root]. *)
let children ~fanout ~n ~root ~node =
  if fanout <= 0 then invalid_arg "Batch.children: fanout must be >= 1";
  let r = rank ~n ~root node in
  let rec collect i acc =
    if i > fanout then List.rev acc
    else
      let c = (r * fanout) + i in
      if c >= n then List.rev acc
      else collect (i + 1) (of_rank ~n ~root c :: acc)
  in
  collect 1 []

(** Parent of [node] ([<> root]) in the tree rooted at [root]. *)
let parent ~fanout ~n ~root ~node =
  if fanout <= 0 then invalid_arg "Batch.parent: fanout must be >= 1";
  let r = rank ~n ~root node in
  if r = 0 then invalid_arg "Batch.parent: the root has no parent";
  of_rank ~n ~root ((r - 1) / fanout)
