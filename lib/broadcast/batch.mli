(** Batching and dissemination knobs for the broadcast layer.

    [size]/[flush_every] batch sequencer stamps into shared [Ordered]
    wire messages (framing only — sequence numbers are assigned on
    request arrival, so the delivered total order is exactly the
    unbatched one); [fanout] replaces the flat fan-out with a
    complete [fanout]-ary dissemination tree rooted at the stamping
    node. *)

type t = {
  size : int;  (** max updates per [Ordered] wire message (>= 1) *)
  flush_every : int;
      (** flush a partial batch this long after its first entry;
          [0] = at the end of the current simulation instant *)
  fanout : int;  (** [0] = flat [send_all]; [f >= 1] = [f]-ary tree *)
}

(** [size = 1], [flush_every = 0], [fanout = 0]: the wire behaviour
    (message counts, timing) is the pre-batching one. *)
val unbatched : t

(** Raises [Invalid_argument] on [size < 1] or negative knobs. *)
val make : ?size:int -> ?flush_every:int -> ?fanout:int -> unit -> t

val is_trivial : t -> bool
val pp : Format.formatter -> t -> unit

(** Children of [node] in the complete [fanout]-ary tree over
    [0 .. n - 1] rooted at [root] (rank [r] maps to node
    [(root + r) mod n]).  Raises on [fanout < 1]. *)
val children : fanout:int -> n:int -> root:int -> node:int -> int list

(** Parent of [node <> root] in the same tree.  Raises on the root. *)
val parent : fanout:int -> n:int -> root:int -> node:int -> int
