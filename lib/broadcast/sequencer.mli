(** Fixed-sequencer atomic broadcast: node 0 stamps global sequence
    numbers and fans out; receivers buffer out-of-order numbers.
    2 hops end to end, n+1 transport messages per broadcast unbatched.
    With a {!Batch} configuration one [Ordered] wire message carries
    up to [Batch.size] stamped updates (sequence numbers are assigned
    on request arrival, so the total order is exactly the unbatched
    one) and [Batch.fanout >= 1] disseminates each batch down a tree
    rooted at the sequencer instead of a flat [send_all]. *)

val sequencer_node : int

val create : 'p Abcast.factory
