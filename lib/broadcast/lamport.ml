(** Decentralized atomic broadcast via Lamport clocks.

    Flat mode (the classical ISIS-style scheme, [Batch.fanout = 0]):
    every broadcast is timestamped with the sender's Lamport clock and
    sent to all nodes over FIFO channels; receivers acknowledge to
    all.  A pending message is delivered once it is the minimum
    pending (timestamp, origin) pair and a message with a larger
    timestamp has been heard from {e every} node — with FIFO channels
    and monotone clocks nothing earlier can still arrive.  1 message
    hop before stability, n + n² transport messages per broadcast: the
    classical trade-off against the sequencer (ablated in P4).

    Tree mode ([Batch.fanout >= 1]): the all-to-all acknowledgement
    storm is replaced by a two-phase timestamp agreement over the
    complete [fanout]-ary tree rooted at each message's origin
    (Skeen's algorithm shaped as a convergecast).  [TData] flows down
    the tree; every node proposes [(clock+1, node)] and each subtree
    sends {e one} aggregated [TPropose] (the subtree maximum) up to
    its parent; the origin fixes the final timestamp as the global
    maximum and floods [TFinal] back down.  A node delivers its
    minimum-timestamp pending message once that message is final: a
    proposal only ever grows to its final value, and any message not
    yet seen will be proposed above every final timestamp already
    learned (the clock absorbs each [TFinal]), so every node delivers
    in the total order of final timestamps.  3(n-1) transport messages
    per broadcast — the n² acknowledgement term is gone — at the cost
    of one extra phase of tree depth before stability.  Plain
    (non-FIFO) transport suffices: the agreement carries explicit
    timestamps, and loss is masked by the reliable ack/retransmit
    layer under a fault plan. *)

open Mmc_sim

type 'p msg =
  | Data of { lc : int; origin : int; payload : 'p }
  | Ack of { lc : int }

module Pending = Set.Make (struct
  type t = int * int (* (timestamp, origin) *)

  let compare = compare
end)

type 'p node_state = {
  mutable clock : int;
  mutable pending : Pending.t;
  payloads : (int * int, 'p) Hashtbl.t;
  last_heard : int array;  (** highest clock value heard from each node *)
}

let create_flat ?duplicate ?fault ?reliable engine ~n ~latency ~rng ~deliver :
    'p Abcast.t =
  let chan =
    Fifo_channel.create ?duplicate ?fault ?config:reliable engine ~n ~latency
      ~rng
  in
  let states =
    Array.init n (fun _ ->
        {
          clock = 0;
          pending = Pending.empty;
          payloads = Hashtbl.create 16;
          last_heard = Array.make n 0;
        })
  in
  let try_deliver node =
    let st = states.(node) in
    let rec loop () =
      match Pending.min_elt_opt st.pending with
      | None -> ()
      | Some ((ts, origin) as key) ->
        let stable =
          Array.for_all (fun heard -> heard > ts) st.last_heard
        in
        if stable then begin
          st.pending <- Pending.remove key st.pending;
          let payload = Hashtbl.find st.payloads key in
          Hashtbl.remove st.payloads key;
          deliver ~node ~origin payload;
          loop ()
        end
    in
    loop ()
  in
  for node = 0 to n - 1 do
    Fifo_channel.set_handler chan node (fun src msg ->
        let st = states.(node) in
        match msg with
        | Data { lc; origin; payload } ->
          st.clock <- max st.clock lc + 1;
          st.last_heard.(src) <- max st.last_heard.(src) lc;
          st.pending <- Pending.add (lc, origin) st.pending;
          Hashtbl.replace st.payloads (lc, origin) payload;
          Fifo_channel.send_all chan ~src:node (Ack { lc = st.clock });
          try_deliver node
        | Ack { lc } ->
          st.clock <- max st.clock lc + 1;
          st.last_heard.(src) <- max st.last_heard.(src) lc;
          try_deliver node)
  done;
  {
    Abcast.name = "lamport";
    broadcast =
      (fun ~src payload ->
        let st = states.(src) in
        st.clock <- st.clock + 1;
        Fifo_channel.send_all chan ~src
          (Data { lc = st.clock; origin = src; payload }));
    messages_sent = (fun () -> Fifo_channel.messages_sent chan);
  }

(* --- tree mode --- *)

(* Message ids are (origin, per-origin sequence); timestamps are
   (clock, proposer) pairs, unique because each node's proposals use a
   strictly increasing clock. *)
type 'p tmsg =
  | TData of { origin : int; oseq : int; payload : 'p }
  | TPropose of { origin : int; oseq : int; ts : int * int }
      (** aggregated subtree maximum, convergecast to the parent *)
  | TFinal of { origin : int; oseq : int; ts : int * int }

type 'p tentry = {
  payload : 'p;
  mutable ts : int * int;  (** current (proposed or final) timestamp *)
  mutable final : bool;
  mutable waiting : int list;  (** children whose subtree proposal is due *)
}

module Tpending = Set.Make (struct
  type t = (int * int) * (int * int) (* (timestamp, (origin, oseq)) *)

  let compare = compare
end)

let create_tree ?duplicate ?fault ?reliable ~fanout engine ~n ~latency ~rng
    ~deliver : 'p Abcast.t =
  let net =
    Transport.create ?duplicate ?fault ?config:reliable engine ~n ~latency ~rng
  in
  let clocks = Array.make n 0 in
  let entries : (int * int, 'p tentry) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  (* Ordered index over each node's pending entries, keyed by current
     timestamp; re-keyed when the timestamp grows. *)
  let queues = Array.make n Tpending.empty in
  (* A [TFinal] can overtake its own [TData] on the unordered wire:
     park it until the payload arrives. *)
  let early_final : (int * int, int * int) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 4)
  in
  (* Ids already delivered, so an at-least-once duplicate of [TData]
     cannot resurrect a consumed entry. *)
  let consumed : (int * int, unit) Hashtbl.t array =
    Array.init n (fun _ -> Hashtbl.create 16)
  in
  let oseqs = Array.make n 0 in
  let tick node lc = clocks.(node) <- max clocks.(node) lc in
  let try_deliver node =
    let rec loop () =
      match Tpending.min_elt_opt queues.(node) with
      | Some (ts, id) when (Hashtbl.find entries.(node) id).final ->
        queues.(node) <- Tpending.remove (ts, id) queues.(node);
        let e = Hashtbl.find entries.(node) id in
        Hashtbl.remove entries.(node) id;
        Hashtbl.replace consumed.(node) id ();
        deliver ~node ~origin:(fst id) e.payload;
        loop ()
      | _ -> ()
    in
    loop ()
  in
  let rekey node id e ts =
    if ts > e.ts then begin
      queues.(node) <- Tpending.add (ts, id) (Tpending.remove (e.ts, id) queues.(node));
      e.ts <- ts
    end
  in
  let finalize node id ts =
    if not (Hashtbl.mem consumed.(node) id) then
      match Hashtbl.find_opt entries.(node) id with
      | None -> Hashtbl.replace early_final.(node) id ts
      | Some e ->
        if not e.final then begin
          rekey node id e ts;
          e.final <- true;
          try_deliver node
        end
  in
  (* Every due subtree reported: the origin fixes the final timestamp
     and floods it down; an inner node sends its aggregate up. *)
  let settle node id e =
    if e.waiting = [] && not e.final then
      let origin = fst id in
      if node = origin then begin
        List.iter
          (fun child ->
            Transport.send net ~src:node ~dst:child
              (TFinal { origin; oseq = snd id; ts = e.ts }))
          (Batch.children ~fanout ~n ~root:origin ~node);
        finalize node id e.ts
      end
      else
        Transport.send net ~src:node
          ~dst:(Batch.parent ~fanout ~n ~root:origin ~node)
          (TPropose { origin; oseq = snd id; ts = e.ts })
  in
  let ingest node ~origin ~oseq payload =
    let id = (origin, oseq) in
    if
      (not (Hashtbl.mem entries.(node) id))
      && not (Hashtbl.mem consumed.(node) id)
    then begin
      clocks.(node) <- clocks.(node) + 1;
      let children = Batch.children ~fanout ~n ~root:origin ~node in
      List.iter
        (fun child ->
          Transport.send net ~src:node ~dst:child
            (TData { origin; oseq; payload }))
        children;
      let e =
        {
          payload;
          ts = (clocks.(node), node);
          final = false;
          waiting = children;
        }
      in
      Hashtbl.replace entries.(node) id e;
      queues.(node) <- Tpending.add (e.ts, id) queues.(node);
      match Hashtbl.find_opt early_final.(node) id with
      | Some ts ->
        Hashtbl.remove early_final.(node) id;
        tick node (fst ts);
        finalize node id ts
      | None -> settle node id e
    end
  in
  for node = 0 to n - 1 do
    Transport.set_handler net node (fun src msg ->
        match msg with
        | TData { origin; oseq; payload } -> ingest node ~origin ~oseq payload
        | TPropose { origin; oseq; ts } -> (
          tick node (fst ts);
          match Hashtbl.find_opt entries.(node) (origin, oseq) with
          | None -> ()
          | Some e ->
            if List.mem src e.waiting then begin
              e.waiting <- List.filter (fun c -> c <> src) e.waiting;
              rekey node (origin, oseq) e ts;
              settle node (origin, oseq) e
            end)
        | TFinal { origin; oseq; ts } ->
          tick node (fst ts);
          (match Hashtbl.find_opt entries.(node) (origin, oseq) with
          | Some e when e.final -> () (* duplicate: already forwarded *)
          | _ ->
            List.iter
              (fun child ->
                Transport.send net ~src:node ~dst:child
                  (TFinal { origin; oseq; ts }))
              (Batch.children ~fanout ~n ~root:origin ~node));
          finalize node (origin, oseq) ts)
  done;
  {
    Abcast.name = "lamport-tree";
    broadcast =
      (fun ~src payload ->
        let oseq = oseqs.(src) in
        oseqs.(src) <- oseq + 1;
        ingest src ~origin:src ~oseq payload);
    messages_sent = (fun () -> Transport.messages_sent net);
  }

let create ?duplicate ?fault ?reliable ?(batch = Batch.unbatched) engine ~n
    ~latency ~rng ~deliver : 'p Abcast.t =
  if batch.Batch.fanout > 0 then
    create_tree ?duplicate ?fault ?reliable ~fanout:batch.Batch.fanout engine
      ~n ~latency ~rng ~deliver
  else create_flat ?duplicate ?fault ?reliable engine ~n ~latency ~rng ~deliver

let factory : 'p Abcast.factory = create
