(** Decentralized atomic broadcast via Lamport clocks (ISIS style).

    Every broadcast is timestamped with the sender's Lamport clock and
    sent to all nodes over FIFO channels; receivers acknowledge to all.
    A pending message is delivered once it is the minimum pending
    (timestamp, origin) pair and a message with a larger timestamp has
    been heard from {e every} node — with FIFO channels and monotone
    clocks nothing earlier can still arrive.  1 message hop before
    stability, O(n^2) transport messages per broadcast: the classical
    trade-off against the sequencer (ablated in experiment P4). *)

open Mmc_sim

type 'p msg =
  | Data of { lc : int; origin : int; payload : 'p }
  | Ack of { lc : int }

module Pending = Set.Make (struct
  type t = int * int (* (timestamp, origin) *)

  let compare = compare
end)

type 'p node_state = {
  mutable clock : int;
  mutable pending : Pending.t;
  payloads : (int * int, 'p) Hashtbl.t;
  last_heard : int array;  (** highest clock value heard from each node *)
}

let create ?duplicate ?fault ?reliable engine ~n ~latency ~rng ~deliver :
    'p Abcast.t =
  let chan =
    Fifo_channel.create ?duplicate ?fault ?config:reliable engine ~n ~latency
      ~rng
  in
  let states =
    Array.init n (fun _ ->
        {
          clock = 0;
          pending = Pending.empty;
          payloads = Hashtbl.create 16;
          last_heard = Array.make n 0;
        })
  in
  let try_deliver node =
    let st = states.(node) in
    let rec loop () =
      match Pending.min_elt_opt st.pending with
      | None -> ()
      | Some ((ts, origin) as key) ->
        let stable =
          Array.for_all (fun heard -> heard > ts) st.last_heard
        in
        if stable then begin
          st.pending <- Pending.remove key st.pending;
          let payload = Hashtbl.find st.payloads key in
          Hashtbl.remove st.payloads key;
          deliver ~node ~origin payload;
          loop ()
        end
    in
    loop ()
  in
  for node = 0 to n - 1 do
    Fifo_channel.set_handler chan node (fun src msg ->
        let st = states.(node) in
        match msg with
        | Data { lc; origin; payload } ->
          st.clock <- max st.clock lc + 1;
          st.last_heard.(src) <- max st.last_heard.(src) lc;
          st.pending <- Pending.add (lc, origin) st.pending;
          Hashtbl.replace st.payloads (lc, origin) payload;
          Fifo_channel.send_all chan ~src:node (Ack { lc = st.clock });
          try_deliver node
        | Ack { lc } ->
          st.clock <- max st.clock lc + 1;
          st.last_heard.(src) <- max st.last_heard.(src) lc;
          try_deliver node)
  done;
  {
    Abcast.name = "lamport";
    broadcast =
      (fun ~src payload ->
        let st = states.(src) in
        st.clock <- st.clock + 1;
        Fifo_channel.send_all chan ~src
          (Data { lc = st.clock; origin = src; payload }));
    messages_sent = (fun () -> Fifo_channel.messages_sent chan);
  }

let factory : 'p Abcast.factory = create
